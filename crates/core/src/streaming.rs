//! Multi-frame streaming engine: concurrent inference over a queue of
//! voxelized frames (the AR/VR and autonomous-driving deployments the
//! paper's introduction motivates), on a persistent worker pool.
//!
//! The simulated timing model is **unchanged** by concurrency: every
//! frame's [`CycleStats`] is bit-identical to what the sequential
//! [`Esca::run_network_stream`] path produces (weight load charged on
//! frame 0 only, steady-state weights-resident frames afterwards), and
//! batch results are returned in frame order regardless of completion
//! order. What concurrency buys is host wall-clock — plus a deterministic
//! *modeled* multi-engine deployment throughput derived purely from the
//! per-frame cycle counts (see [`StreamReport::modeled`]), which is the
//! number an FPGA with several ESCA instances would actually sustain.

use crate::accelerator::{Esca, LayerOpts};
use crate::stats::CycleStats;
use crate::system::{run_unet, HostModel, SystemRun};
use crate::telemetry::{LayerSpan, LayerTelemetry};
use crate::Result;
use crossbeam::channel;
use esca_sscn::engine::{stack_network_digest, RulebookCache};
use esca_sscn::gemm::GemmBackendKind;
use esca_sscn::plan::{PlanCache, PlanKey};
use esca_sscn::quant::QuantizedWeights;
use esca_sscn::unet::SsUNet;
use esca_telemetry::serve::{HealthReport, ObservabilityHub, OperatingPoint};
use esca_telemetry::{host, ChromeTrace, FlightEvent, FrameSpanCtx, Registry, TelemetrySnapshot};
use esca_tensor::{SparseTensor, Q16};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Jobs receive the index of the worker thread that runs them, so batch
/// collectors can attribute host-domain work (frames per worker) without
/// any thread-local state.
type Job = Box<dyn FnOnce(usize) + Send + 'static>;

/// A persistent pool of worker threads consuming boxed jobs from an
/// unbounded channel. Threads live for the lifetime of the pool (they are
/// joined on drop), so repeated batches reuse them — the "persistent
/// worker pool" half of the streaming engine.
///
/// Workers survive panicking jobs: each job runs under `catch_unwind`, so
/// a panic is counted ([`WorkerPool::panicked_jobs`]) and the thread goes
/// back to the queue instead of dying and silently shrinking the pool.
pub struct WorkerPool {
    sender: Option<channel::Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    panicked: Arc<AtomicU64>,
    rejected: AtomicU64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .field("panicked_jobs", &self.panicked_jobs())
            .field("rejected_jobs", &self.rejected_jobs())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = channel::unbounded::<Job>();
        let panicked = Arc::new(AtomicU64::new(0));
        let handles = (0..workers)
            .map(|worker| {
                let rx = rx.clone();
                let panicked = Arc::clone(&panicked);
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        // The closure owns the boxed job and any state it
                        // captured; on panic that state is discarded
                        // whole, never observed half-mutated, so the
                        // unwind-safety assertion holds.
                        let run = std::panic::AssertUnwindSafe(move || job(worker));
                        if std::panic::catch_unwind(run).is_err() {
                            panicked.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        WorkerPool {
            sender: Some(tx),
            handles,
            panicked,
            rejected: AtomicU64::new(0),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Jobs that panicked while running (caught; the worker survived).
    pub fn panicked_jobs(&self) -> u64 {
        self.panicked.load(Ordering::Relaxed)
    }

    /// Jobs rejected by [`WorkerPool::execute`] because the queue channel
    /// was disconnected.
    pub fn rejected_jobs(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Enqueues a job; it runs on the first free worker, which passes its
    /// own index (in `0..workers`) to the closure.
    ///
    /// # Errors
    ///
    /// Returns [`crate::EscaError::PoolClosed`] (and counts the rejection)
    /// when the queue channel is disconnected — the job was *not*
    /// enqueued and will never run. This cannot happen through the public
    /// API before the pool is dropped, but a silently discarded job is
    /// exactly the failure mode that loses frames, so the send result is
    /// surfaced instead of swallowed.
    pub fn execute(&self, job: impl FnOnce(usize) + Send + 'static) -> crate::Result<()> {
        let sent = match self.sender.as_ref() {
            Some(tx) => tx.send(Box::new(job)).map_err(|_| ()),
            None => Err(()),
        };
        sent.map_err(|()| {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            crate::EscaError::PoolClosed
        })
    }
}

/// Delivers a job result to its batch collector. Collectors drain exactly
/// as many messages as jobs were submitted, so a failed send means the
/// collector was abandoned mid-batch (a panic unwound it); the result is
/// undeliverable and the drop is counted so it can never pass silently.
pub(crate) fn deliver<T>(tx: &channel::Sender<T>, undelivered: &AtomicU64, msg: T) {
    if tx.send(msg).is_err() {
        undelivered.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the channel so workers drain and exit, then join.
        drop(self.sender.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A streaming inference session: an accelerator plus a quantized layer
/// stack bound to a persistent [`WorkerPool`], accepting batches of
/// voxelized frames.
#[derive(Debug)]
pub struct StreamingSession {
    pub(crate) esca: Arc<Esca>,
    pub(crate) layers: Arc<Vec<(QuantizedWeights, bool)>>,
    pub(crate) pool: WorkerPool,
    pub(crate) layer_shards: usize,
    pub(crate) rulebook_cache: Arc<RulebookCache>,
    pub(crate) gemm_backend: GemmBackendKind,
    pub(crate) plan_cache: Option<Arc<PlanCache>>,
    pub(crate) hub: Option<Arc<ObservabilityHub>>,
    pub(crate) operating_point: Option<OperatingPoint>,
}

/// One frame's results, internal to batch collection.
struct FrameRun {
    output: SparseTensor<Q16>,
    stats: CycleStats,
    telemetry: LayerTelemetry,
    wall: Duration,
    worker: usize,
}

pub(crate) fn run_frame(
    esca: &Esca,
    layers: &[(QuantizedWeights, bool)],
    frame: &SparseTensor<Q16>,
    opts: LayerOpts,
    layer_shards: usize,
) -> Result<(SparseTensor<Q16>, CycleStats, LayerTelemetry)> {
    let mut x = frame.clone();
    let mut total = CycleStats::default();
    let mut tele = LayerTelemetry::new();
    for (layer, (w, relu)) in layers.iter().enumerate() {
        let run = if layer_shards > 1 {
            esca.run_layer_sharded_with(&x, w, *relu, opts, layer_shards)?
        } else {
            esca.run_layer_with(&x, w, *relu, opts)?
        };
        // The layer's frame-relative cycle interval, recorded here (after
        // the shard merge) so shard count cannot show in the spans.
        let start_cycle = total.total_cycles();
        total += &run.stats;
        tele.merge(&run.telemetry);
        tele.push_layer_span(LayerSpan {
            layer: layer as u32,
            start_cycle,
            end_cycle: total.total_cycles(),
            matching_resident: run.stats.matching_resident,
        });
        x = run.output;
    }
    Ok((x, total, tele))
}

impl StreamingSession {
    /// Creates a session over `workers` pool threads. `layers` is the
    /// resident network: `(weights, relu)` per Sub-Conv layer, applied in
    /// order to every frame.
    pub fn new(esca: Esca, layers: Vec<(QuantizedWeights, bool)>, workers: usize) -> Self {
        StreamingSession {
            esca: Arc::new(esca),
            layers: Arc::new(layers),
            pool: WorkerPool::new(workers),
            layer_shards: 1,
            rulebook_cache: Arc::new(RulebookCache::new()),
            gemm_backend: GemmBackendKind::from_env(),
            plan_cache: PlanCache::from_env(),
            hub: None,
            operating_point: None,
        }
    }

    /// Attaches an [`ObservabilityHub`]: batch runs publish live
    /// snapshots and health reports through it (one `Arc` swap per frame
    /// arrival) and append one terminal [`FlightEvent`] per frame to its
    /// flight ring. Without a hub the batch paths skip all of this —
    /// observability is strictly opt-in on the hot path.
    pub fn with_hub(mut self, hub: Arc<ObservabilityHub>) -> Self {
        self.hub = Some(hub);
        self
    }

    /// The attached observability hub, if any.
    pub fn hub(&self) -> Option<&Arc<ObservabilityHub>> {
        self.hub.as_ref()
    }

    /// Pins the SLO operating point the session runs under (the
    /// `slo_front` selector's choice from the availability/latency
    /// Pareto front); `/healthz` publishes it so an external controller
    /// can see which policy the service believes it is running.
    pub fn with_operating_point(mut self, op: OperatingPoint) -> Self {
        self.operating_point = Some(op);
        self
    }

    /// The pinned SLO operating point, if any.
    pub fn operating_point(&self) -> Option<&OperatingPoint> {
        self.operating_point.as_ref()
    }

    /// A point-in-time health report from the pool counters
    /// (unbounded-admission paths).
    pub(crate) fn health_report(
        &self,
        phase: &str,
        submitted: u64,
        completed: u64,
        dropped: u64,
    ) -> HealthReport {
        self.health_report_admission(phase, submitted, completed, dropped, "unbounded", 0)
    }

    /// A point-in-time health report carrying the live admission state
    /// (ingest-queue policy label + depth) and the pinned operating
    /// point.
    pub(crate) fn health_report_admission(
        &self,
        phase: &str,
        submitted: u64,
        completed: u64,
        dropped: u64,
        admission_policy: &str,
        admission_depth: u64,
    ) -> HealthReport {
        let panicked = self.pool.panicked_jobs();
        let rejected = self.pool.rejected_jobs();
        HealthReport {
            healthy: rejected == 0,
            phase: phase.to_string(),
            workers: self.pool.workers() as u64,
            panicked_jobs: panicked,
            rejected_jobs: rejected,
            frames_submitted: submitted,
            frames_completed: completed,
            frames_dropped: dropped,
            admission_policy: admission_policy.to_string(),
            admission_depth,
            operating_point: self.operating_point,
        }
    }

    /// Additionally shards tile-level compute *within* each layer across
    /// `shards` threads (see [`Esca::run_layer_sharded`]); results stay
    /// bit-identical. Useful when frames are few but large.
    pub fn with_layer_shards(mut self, shards: usize) -> Self {
        self.layer_shards = shards.max(1);
        self
    }

    /// Replaces the session's rulebook cache with a shared one, so
    /// matching work done by other sessions (or earlier host-side runs)
    /// carries over into [`StreamingSession::run_golden_batch`]. The cache
    /// only serves the golden path; simulated [`CycleStats`] never depend
    /// on it.
    pub fn with_rulebook_cache(mut self, cache: Arc<RulebookCache>) -> Self {
        self.rulebook_cache = cache;
        self
    }

    /// The session's rulebook cache (hit/miss counters included).
    pub fn rulebook_cache(&self) -> &Arc<RulebookCache> {
        &self.rulebook_cache
    }

    /// Attaches (or detaches, with `None`) a whole-network geometry
    /// [`PlanCache`]. With a plan cache, the golden path
    /// ([`StreamingSession::run_golden_batch`]) records each distinct
    /// frame geometry's whole-stack plan once and replays it with zero
    /// per-layer cache probes afterwards, and the cycle-model path
    /// ([`StreamingSession::run_batch`]) runs repeated geometries
    /// **matching-resident** (see
    /// [`crate::config::EscaConfig::matching_resident`]). Defaults to
    /// [`PlanCache::from_env`] (`ESCA_PLAN_CACHE=1` enables, with an
    /// optional `ESCA_PLAN_CACHE_BYTES` budget).
    pub fn with_plan_cache(mut self, plans: Option<Arc<PlanCache>>) -> Self {
        self.plan_cache = plans;
        self
    }

    /// The session's whole-network plan cache, if enabled.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plan_cache.as_ref()
    }

    /// Deterministic per-frame matching-residency hints for a batch: a
    /// frame runs matching-resident exactly when its whole-network
    /// geometry plan already exists — because an earlier frame in this
    /// batch has the same active-set fingerprint, or a previous batch
    /// left the plan resident in the session's [`PlanCache`]. Pure
    /// function of the frame sequence and the cache's pre-batch contents
    /// (probed without touching hit/miss counters), so the hints — and
    /// every cycle statistic derived from them — are byte-identical
    /// across worker and shard counts. Without a plan cache every hint
    /// is `false`.
    fn residency_hints(&self, frames: &[SparseTensor<Q16>]) -> Vec<bool> {
        let Some(plans) = &self.plan_cache else {
            return vec![false; frames.len()];
        };
        let network = stack_network_digest(&self.layers);
        let mut seen = std::collections::HashSet::new();
        frames
            .iter()
            .map(|f| {
                let frame = f.active_fingerprint();
                !seen.insert(frame) || plans.contains(&PlanKey { network, frame })
            })
            .collect()
    }

    /// Selects the GEMM backend for the golden path
    /// ([`StreamingSession::run_golden_batch`]). Quantized accumulation is
    /// integer-exact, so outputs stay bit-identical across backends; this
    /// only trades speed. Defaults to [`GemmBackendKind::from_env`].
    pub fn with_gemm_backend(mut self, backend: GemmBackendKind) -> Self {
        self.gemm_backend = backend;
        self
    }

    /// The GEMM backend used by the golden path.
    pub fn gemm_backend(&self) -> GemmBackendKind {
        self.gemm_backend
    }

    /// Number of pool workers.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The accelerator configuration clock, MHz.
    pub fn clock_mhz(&self) -> f64 {
        self.esca.config().clock_mhz
    }

    /// Runs a batch of frames through the resident layer stack.
    ///
    /// Frame 0 is charged the DRAM weight load, later frames run with
    /// weights resident — exactly the accounting of
    /// [`Esca::run_network_stream`] — and frames execute concurrently on
    /// the pool. Results are ordered by frame index; per-frame
    /// [`CycleStats`] are bit-identical to the sequential path for any
    /// worker count.
    ///
    /// # Errors
    ///
    /// Propagates the accelerator error of the lowest-indexed failing
    /// frame (deterministic across worker counts).
    pub fn run_batch(&self, frames: &[SparseTensor<Q16>]) -> Result<StreamReport> {
        // Host-throughput reporting only (StreamReport::wall); never feeds
        // CycleStats. Audited in analyze/allowlist.tsv (L1-wall-clock).
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        // Residency hints are derived sequentially on the calling thread,
        // before any job is submitted, so they cannot depend on worker
        // scheduling.
        let hints = self.residency_hints(frames);
        let (tx, rx) = channel::unbounded();
        let undelivered = Arc::new(AtomicU64::new(0));
        for (idx, frame) in frames.iter().enumerate() {
            let esca = Arc::clone(&self.esca);
            let layers = Arc::clone(&self.layers);
            let frame = frame.clone();
            let tx = tx.clone();
            let undelivered = Arc::clone(&undelivered);
            let shards = self.layer_shards;
            let opts = LayerOpts {
                load_weights: idx == 0,
                matching_resident: hints[idx],
            };
            self.pool.execute(move |worker| {
                // Host-throughput reporting only (FrameRun::frame_wall).
                #[allow(clippy::disallowed_methods)]
                let t0 = Instant::now();
                let result = run_frame(&esca, &layers, &frame, opts, shards);
                deliver(&tx, &undelivered, (idx, result, t0.elapsed(), worker));
            })?;
        }
        // Steady-state probe: frame 0 re-run with weights resident, so the
        // deployment model knows the pure weight-load overhead. Purely
        // cycle-model work; does not contribute to outputs or wall stats.
        if !frames.is_empty() {
            let esca = Arc::clone(&self.esca);
            let layers = Arc::clone(&self.layers);
            let frame = frames[0].clone();
            let tx = tx.clone();
            let undelivered = Arc::clone(&undelivered);
            let shards = self.layer_shards;
            // The probe differs from frame 0 only by the weight load, so
            // weight_load_cycles() stays a pure weight-path delta.
            let opts = LayerOpts {
                load_weights: false,
                matching_resident: hints[0],
            };
            self.pool.execute(move |worker| {
                // Host-throughput reporting only; the probe's cycle stats
                // come from the model, not this timer.
                #[allow(clippy::disallowed_methods)]
                let t0 = Instant::now();
                let result = run_frame(&esca, &layers, &frame, opts, shards);
                deliver(
                    &tx,
                    &undelivered,
                    (usize::MAX, result, t0.elapsed(), worker),
                );
            })?;
        }
        drop(tx);

        let mut slots: Vec<Option<FrameRun>> = (0..frames.len()).map(|_| None).collect();
        let mut steady_frame0: Option<CycleStats> = None;
        let mut errors: Vec<(usize, crate::EscaError)> = Vec::new();
        let expected = frames.len() + usize::from(!frames.is_empty());
        // Live exposition (hub attached only): arrivals fold into interim
        // registries in completion order — legal because the merge rules
        // are commutative — and each arrival publishes a fresh snapshot
        // through the hub's Arc swap. The *final* report below is still
        // built in frame order from scratch, so its cycle half stays
        // byte-identical across worker/shard splits; the live view is a
        // monotone prefix of the same data.
        let mut live_cycle = Registry::new();
        let mut live_host = Registry::new();
        let mut completed = 0u64;
        let backend_label = self.gemm_backend.label();
        for _ in 0..expected {
            let (idx, result, wall, worker) = rx.recv().expect("worker dropped a frame result");
            match result {
                Ok((output, stats, telemetry)) => {
                    if idx == usize::MAX {
                        steady_frame0 = Some(stats);
                    } else {
                        if let Some(hub) = &self.hub {
                            completed += 1;
                            stats.record_into(&mut live_cycle);
                            telemetry.record_into(&mut live_cycle);
                            live_cycle.observe("esca_frame_cycles", &[], stats.total_cycles());
                            host::observe_wall(&mut live_host, "esca_frame_wall_micros", &[], wall);
                            hub.record_flight(FlightEvent {
                                worker: worker as u64,
                                plan_resident: hints[idx],
                                backend: backend_label.to_string(),
                                cycles: stats.total_cycles(),
                                wall_micros: wall.as_micros() as u64,
                                ..FlightEvent::for_frame(idx as u64)
                            });
                            hub.publish_snapshot(TelemetrySnapshot::from_registries(
                                &live_cycle,
                                &live_host,
                            ));
                            hub.publish_health(self.health_report(
                                "streaming",
                                frames.len() as u64,
                                completed,
                                0,
                            ));
                        }
                        slots[idx] = Some(FrameRun {
                            output,
                            stats,
                            telemetry,
                            wall,
                            worker,
                        });
                    }
                }
                Err(e) => {
                    if idx != usize::MAX {
                        if let Some(hub) = &self.hub {
                            hub.record_flight(FlightEvent {
                                worker: worker as u64,
                                outcome: "failed".to_string(),
                                backend: backend_label.to_string(),
                                wall_micros: wall.as_micros() as u64,
                                ..FlightEvent::for_frame(idx as u64)
                            });
                        }
                    }
                    errors.push((idx, e));
                }
            }
        }
        if let Some((_, e)) = errors.into_iter().min_by_key(|(idx, _)| *idx) {
            return Err(e);
        }

        // Two strictly separated registries (DESIGN.md: Observability).
        // The cycle registry folds per-frame simulated telemetry in frame
        // order — every input is deterministic and every merge is
        // sum/max/bucket-add, so the snapshot is byte-identical for any
        // worker or shard count. The host registry takes wall-clock and
        // scheduling facts and is the only place they may land.
        let mut cycle_reg = Registry::new();
        let mut host_reg = Registry::new();
        // Residency hints are deterministic, so this count is part of the
        // cycle domain; the plan cache's own hit/miss counters are host
        // scheduling facts and stay in the host registry.
        cycle_reg.counter_add(
            "esca_stream_resident_frames_total",
            &[],
            hints.iter().filter(|&&h| h).count() as u64,
        );
        if let Some(plans) = &self.plan_cache {
            plans.record_metrics(&mut host_reg);
        }
        host_reg.gauge_max("esca_stream_workers", &[], self.pool.workers() as u64);
        host_reg.gauge_max("esca_stream_queue_depth", &[], expected as u64);
        // Always zero unless the collector was unwound mid-batch; surfaced
        // so a dropped result can never pass silently.
        host_reg.counter_add(
            "esca_results_undelivered_total",
            &[],
            undelivered.load(Ordering::Relaxed),
        );
        let mut outputs = Vec::with_capacity(frames.len());
        let mut per_frame = Vec::with_capacity(frames.len());
        let mut frame_wall = Vec::with_capacity(frames.len());
        let mut frame_spans = Vec::with_capacity(frames.len());
        for (idx, slot) in slots.into_iter().enumerate() {
            let fr = slot.expect("every frame reported");
            fr.stats.record_into(&mut cycle_reg);
            fr.telemetry.record_into(&mut cycle_reg);
            cycle_reg.observe("esca_frame_cycles", &[], fr.stats.total_cycles());
            host::observe_wall(&mut host_reg, "esca_frame_wall_micros", &[], fr.wall);
            let worker = fr.worker.to_string();
            host_reg.counter_add(
                "esca_worker_frames_total",
                &[("worker", worker.as_str())],
                1,
            );
            frame_spans.push(FrameSpanTrace {
                ctx: FrameSpanCtx {
                    frame: idx as u64,
                    attempt: 0,
                    worker: fr.worker as u64,
                    shards: self.layer_shards as u64,
                },
                total_cycles: fr.stats.total_cycles(),
                spans: fr.telemetry.layer_spans.clone(),
            });
            outputs.push(fr.output);
            per_frame.push(fr.stats);
            frame_wall.push(fr.wall);
        }
        let wall = start.elapsed();
        host::record_wall(&mut host_reg, "esca_batch_wall_micros_total", &[], wall);
        let telemetry = TelemetrySnapshot::from_registries(&cycle_reg, &host_reg);
        if let Some(hub) = &self.hub {
            hub.publish_snapshot(telemetry.clone());
            hub.publish_health(self.health_report(
                "done",
                frames.len() as u64,
                frames.len() as u64,
                0,
            ));
        }
        Ok(StreamReport {
            outputs,
            per_frame,
            frame_wall,
            wall,
            steady_frame0,
            clock_mhz: self.esca.config().clock_mhz,
            workers: self.pool.workers(),
            telemetry,
            frame_spans,
        })
    }

    /// Runs a batch of frames through the resident stack on the
    /// **host-side golden path** ([`Esca::run_network_golden`]): flat
    /// gather → per-tap GEMM → scatter with rulebooks served from the
    /// session's shared [`RulebookCache`] across frames *and* workers.
    /// Static-geometry streams (the paper's AR/VR deployment re-infers the
    /// same voxelized scene as weights or late fusion inputs change) pay
    /// for coordinate matching exactly once for the whole batch — and with
    /// a session [`PlanCache`] attached, repeated geometries replay one
    /// whole-network plan with zero per-layer cache probes. Outputs are
    /// bit-identical to [`StreamingSession::run_batch`]'s, in frame
    /// order; no cycle model runs.
    ///
    /// # Errors
    ///
    /// Propagates the error of the lowest-indexed failing frame
    /// (deterministic across worker counts).
    pub fn run_golden_batch(&self, frames: &[SparseTensor<Q16>]) -> Result<Vec<SparseTensor<Q16>>> {
        let (tx, rx) = channel::unbounded();
        let undelivered = Arc::new(AtomicU64::new(0));
        for (idx, frame) in frames.iter().enumerate() {
            let esca = Arc::clone(&self.esca);
            let layers = Arc::clone(&self.layers);
            let cache = Arc::clone(&self.rulebook_cache);
            let frame = frame.clone();
            let tx = tx.clone();
            let undelivered = Arc::clone(&undelivered);
            let backend = self.gemm_backend;
            let plans = self.plan_cache.clone();
            self.pool.execute(move |_worker| {
                let result =
                    esca.run_network_golden_planned(&frame, &layers, &cache, backend, plans);
                deliver(&tx, &undelivered, (idx, result));
            })?;
        }
        drop(tx);
        let mut slots: Vec<Option<SparseTensor<Q16>>> = (0..frames.len()).map(|_| None).collect();
        let mut errors: Vec<(usize, crate::EscaError)> = Vec::new();
        for _ in 0..frames.len() {
            let (idx, result) = rx.recv().expect("worker dropped a frame result");
            match result {
                Ok(out) => slots[idx] = Some(out),
                Err(e) => errors.push((idx, e)),
            }
        }
        if let Some((_, e)) = errors.into_iter().min_by_key(|(idx, _)| *idx) {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every frame reported"))
            .collect())
    }

    /// Runs a batch of float frames through a full SS U-Net system
    /// pipeline ([`run_unet`]: Sub-Conv layers on the accelerator, the
    /// rest on the host model), one frame per pool job. Results are in
    /// frame order and identical to a sequential [`run_unet`] loop.
    ///
    /// # Errors
    ///
    /// Propagates the error of the lowest-indexed failing frame.
    pub fn run_unet_batch(
        &self,
        net: &SsUNet,
        host: &HostModel,
        frames: &[SparseTensor<f32>],
        act_bits: u8,
    ) -> Result<Vec<SystemRun>> {
        let net = Arc::new(net.clone());
        let host = *host;
        let (tx, rx) = channel::unbounded();
        let undelivered = Arc::new(AtomicU64::new(0));
        for (idx, frame) in frames.iter().enumerate() {
            let esca = Arc::clone(&self.esca);
            let net = Arc::clone(&net);
            let frame = frame.clone();
            let tx = tx.clone();
            let undelivered = Arc::clone(&undelivered);
            self.pool.execute(move |_worker| {
                let result = run_unet(&net, &esca, &host, &frame, act_bits);
                deliver(&tx, &undelivered, (idx, result));
            })?;
        }
        drop(tx);
        let mut slots: Vec<Option<SystemRun>> = (0..frames.len()).map(|_| None).collect();
        let mut errors: Vec<(usize, crate::EscaError)> = Vec::new();
        for _ in 0..frames.len() {
            let (idx, result) = rx.recv().expect("worker dropped a frame result");
            match result {
                Ok(run) => slots[idx] = Some(run),
                Err(e) => errors.push((idx, e)),
            }
        }
        if let Some((_, e)) = errors.into_iter().min_by_key(|(idx, _)| *idx) {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every frame reported"))
            .collect())
    }
}

/// One frame's slot in a modeled multi-engine schedule (see
/// [`StreamReport::modeled_schedule`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeledSlot {
    /// Frame index within the batch.
    pub frame: usize,
    /// Engine the frame was assigned to.
    pub engine: usize,
    /// Cycle the engine starts the frame.
    pub start_cycle: u64,
    /// Cycles the frame occupies the engine (weight load included for an
    /// engine's first frame).
    pub cycles: u64,
}

/// A modeled multi-engine deployment of a batch: what `engines` ESCA
/// instances on one FPGA would sustain, derived deterministically from
/// the per-frame simulated cycle counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeledDeployment {
    /// Number of accelerator engines modeled.
    pub engines: usize,
    /// Batch makespan in cycles under greedy earliest-finish scheduling.
    pub makespan_cycles: u64,
    /// Sustained throughput at the configured clock, frames per second.
    pub frames_per_s: f64,
    /// Speedup over the single-engine makespan.
    pub speedup: f64,
}

/// Results of one [`StreamingSession::run_batch`] call.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Final layer outputs, in frame order.
    pub outputs: Vec<SparseTensor<Q16>>,
    /// Per-frame cycle statistics, in frame order — bit-identical to
    /// [`Esca::run_network_stream`] on the same batch.
    pub per_frame: Vec<CycleStats>,
    /// Host wall-clock each frame's job took.
    pub frame_wall: Vec<Duration>,
    /// Host wall-clock for the whole batch.
    pub wall: Duration,
    /// Frame 0's stats re-simulated with weights resident (the
    /// steady-state probe); `None` for an empty batch.
    pub steady_frame0: Option<CycleStats>,
    /// The accelerator clock the cycle counts are timed at, MHz.
    pub clock_mhz: f64,
    /// Pool worker count the batch ran with.
    pub workers: usize,
    /// Two-domain metrics snapshot: `cycle` is byte-identical across
    /// worker and shard counts; `host` carries wall latencies and
    /// worker/queue facts.
    pub telemetry: TelemetrySnapshot,
    /// Span-context traces, one per frame in frame order — the source of
    /// the nested frame → attempt → layer Perfetto export
    /// ([`StreamReport::to_span_trace`]).
    pub frame_spans: Vec<FrameSpanTrace>,
}

/// One frame's span-context trace: the [`FrameSpanCtx`] that produced a
/// set of frame-relative per-layer cycle intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSpanTrace {
    /// Which frame, attempt, worker and shard split produced the spans.
    pub ctx: FrameSpanCtx,
    /// Total simulated cycles of the frame (the enclosing span).
    pub total_cycles: u64,
    /// Per-layer intervals, frame-relative simulated cycles.
    pub spans: Vec<LayerSpan>,
}

/// Builds the nested frame → attempt → layer Perfetto export from
/// span-context traces: one process (`pid`) per frame, a single lane
/// (`tid` 0) whose slices nest by containment — the frame span encloses
/// the attempt span, which encloses the layer spans. Every `ts`/`dur`
/// derives from simulated cycles, so the export's cycle half is
/// byte-identical across `(workers, shards)` splits; host facts (worker
/// index, shard count) ride only in `args.detail`.
pub fn span_chrome_trace(frames: &[FrameSpanTrace]) -> ChromeTrace {
    let mut trace = ChromeTrace::new();
    for f in frames {
        let pid = f.ctx.frame as u32;
        let detail = format!("worker {} shards {}", f.ctx.worker, f.ctx.shards);
        trace.push_complete(
            "frame",
            &format!("frame {}", f.ctx.frame),
            0,
            f.total_cycles,
            pid,
            0,
            &detail,
        );
        trace.push_complete(
            "attempt",
            &format!("attempt {}", f.ctx.attempt),
            0,
            f.total_cycles,
            pid,
            0,
            &detail,
        );
        for s in &f.spans {
            trace.push_complete(
                "layer",
                &format!("layer {}", s.layer),
                s.start_cycle,
                s.end_cycle.saturating_sub(s.start_cycle),
                pid,
                0,
                if s.matching_resident {
                    "matching_resident"
                } else {
                    "matching"
                },
            );
        }
    }
    trace
}

impl StreamReport {
    /// Number of frames in the batch.
    pub fn frames(&self) -> usize {
        self.per_frame.len()
    }

    /// Host frames per second (wall-clock; varies with worker count and
    /// machine — the simulated numbers below do not).
    pub fn wall_fps(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.frames() as f64 / s
        } else {
            0.0
        }
    }

    /// Nearest-rank percentile of the per-frame host wall times.
    ///
    /// `p` is a percent and is clamped to `[0, 100]`; a non-finite `p`
    /// (NaN, ±∞) is treated as 0. Returns [`Duration::ZERO`] for an
    /// empty batch. The rank is additionally clamped to the last sample,
    /// so the call is total for every `(p, batch)` combination.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        if self.frame_wall.is_empty() {
            return Duration::ZERO;
        }
        let p = if p.is_finite() {
            p.clamp(0.0, 100.0)
        } else {
            0.0
        };
        let mut sorted = self.frame_wall.clone();
        sorted.sort();
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        let rank = rank.min(sorted.len() - 1);
        sorted[rank]
    }

    /// Total simulated cycles of the sequential single-engine timeline
    /// (the sum of per-frame totals — what `run_network_stream` models).
    pub fn sequential_cycles(&self) -> u64 {
        self.per_frame.iter().map(|s| s.total_cycles()).sum()
    }

    /// Weight-load overhead cycles charged to frame 0 (frame 0 total
    /// minus its steady-state probe total).
    pub fn weight_load_cycles(&self) -> u64 {
        match (self.per_frame.first(), &self.steady_frame0) {
            (Some(f0), Some(steady)) => f0.total_cycles().saturating_sub(steady.total_cycles()),
            _ => 0,
        }
    }

    /// Per-frame steady-state cycles (weights resident): the probe total
    /// for frame 0, the measured totals for the rest.
    pub fn steady_frame_cycles(&self) -> Vec<u64> {
        self.per_frame
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if i == 0 {
                    self.steady_frame0
                        .as_ref()
                        .map_or_else(|| s.total_cycles(), CycleStats::total_cycles)
                } else {
                    s.total_cycles()
                }
            })
            .collect()
    }

    /// Exports the span-context traces as a nested Perfetto trace:
    /// frame → attempt → layer slices (see [`span_chrome_trace`]'s
    /// nesting and determinism contract).
    pub fn to_span_trace(&self) -> ChromeTrace {
        span_chrome_trace(&self.frame_spans)
    }

    /// Aggregate effective GOPS over the batch on the simulated timeline
    /// (total effective ops over total cycles at the configured clock).
    pub fn aggregate_gops(&self) -> f64 {
        let ops: u64 = self.per_frame.iter().map(CycleStats::effective_ops).sum();
        let cycles = self.sequential_cycles();
        if cycles == 0 {
            return 0.0;
        }
        let t = cycles as f64 / (self.clock_mhz * 1e6);
        ops as f64 / t / 1e9
    }

    /// Models deploying the batch on `engines` parallel accelerator
    /// instances: frames are assigned in order to the earliest-finishing
    /// engine, each engine pays the weight-load overhead once (its first
    /// frame), and the makespan is the latest engine finish. Pure u64
    /// arithmetic over the simulated per-frame cycles, so the result is
    /// byte-identical across runs and pool worker counts.
    pub fn modeled(&self, engines: usize) -> ModeledDeployment {
        let engines = engines.max(1);
        let makespan = |n: usize| -> u64 {
            self.modeled_schedule(n)
                .iter()
                .map(|s| s.start_cycle + s.cycles)
                .max()
                .unwrap_or(0)
        };
        let span = makespan(engines);
        let single = makespan(1);
        let frames_per_s = if span > 0 {
            self.frames() as f64 / (span as f64 / (self.clock_mhz * 1e6))
        } else {
            0.0
        };
        ModeledDeployment {
            engines,
            makespan_cycles: span,
            frames_per_s,
            speedup: if span > 0 {
                single as f64 / span as f64
            } else {
                1.0
            },
        }
    }

    /// The full frame-to-engine schedule behind [`StreamReport::modeled`]:
    /// frames are assigned in order to the earliest-finishing of `engines`
    /// engines (ties break to the lowest index), each engine paying the
    /// weight-load overhead on its first frame. Pure u64 arithmetic over
    /// simulated per-frame cycles — byte-identical across runs and pool
    /// worker counts.
    pub fn modeled_schedule(&self, engines: usize) -> Vec<ModeledSlot> {
        let engines = engines.max(1);
        let steady = self.steady_frame_cycles();
        let overhead = self.weight_load_cycles();
        let mut finish = vec![0u64; engines];
        let mut used = vec![false; engines];
        let mut slots = Vec::with_capacity(steady.len());
        for (frame, &c) in steady.iter().enumerate() {
            // Earliest-finishing engine; ties break to the lowest index,
            // keeping the schedule deterministic.
            let e = (0..engines)
                .min_by_key(|&i| finish[i])
                .expect("engines >= 1");
            let dur = c + if used[e] { 0 } else { overhead };
            slots.push(ModeledSlot {
                frame,
                engine: e,
                start_cycle: finish[e],
                cycles: dur,
            });
            finish[e] += dur;
            used[e] = true;
        }
        slots
    }

    /// Exports the modeled `engines`-engine deployment as a Chrome
    /// trace-event / Perfetto trace: one thread lane per engine, one
    /// complete (`"X"`) event per frame, timestamps in simulated cycles.
    /// Deterministic for any worker count (it is derived purely from
    /// [`StreamReport::modeled_schedule`]).
    pub fn to_chrome_trace(&self, engines: usize) -> ChromeTrace {
        let mut trace = ChromeTrace::new();
        for slot in self.modeled_schedule(engines) {
            trace.push_complete(
                "engine",
                &format!("frame {}", slot.frame),
                slot.start_cycle,
                slot.cycles,
                0,
                slot.engine as u32,
                &format!("engine {}", slot.engine),
            );
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EscaConfig;
    use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
    use esca_sscn::weights::ConvWeights;
    use esca_tensor::{Coord3, Extent3, QuantParams};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha12Rng;

    fn frame(seed: u64) -> SparseTensor<Q16> {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut t = SparseTensor::<f32>::new(Extent3::cube(16), 2);
        for _ in 0..40 {
            let c = Coord3::new(
                rng.gen_range(0..16),
                rng.gen_range(0..16),
                rng.gen_range(0..16),
            );
            let f: Vec<f32> = (0..2).map(|_| rng.gen_range(-2.0..2.0)).collect();
            t.insert(c, &f).unwrap();
        }
        t.canonicalize();
        quantize_tensor(&t, QuantParams::new(8).unwrap())
    }

    fn layers() -> Vec<(QuantizedWeights, bool)> {
        vec![
            (
                QuantizedWeights::auto(&ConvWeights::seeded(3, 2, 8, 21), 8, 10).unwrap(),
                true,
            ),
            (
                QuantizedWeights::auto(&ConvWeights::seeded(3, 8, 4, 22), 8, 10).unwrap(),
                false,
            ),
        ]
    }

    #[test]
    fn pool_runs_jobs_and_joins_on_drop() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        let (tx, rx) = channel::unbounded();
        for i in 0..20usize {
            let tx = tx.clone();
            pool.execute(move |worker| {
                assert!(worker < 3, "worker index out of range");
                tx.send(i * i).expect("collector alive");
            })
            .expect("pool accepts jobs before drop");
        }
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..20).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(pool.panicked_jobs(), 0);
        assert_eq!(pool.rejected_jobs(), 0);
        drop(pool); // joins without hanging
    }

    #[test]
    fn panicked_jobs_do_not_shrink_the_pool() {
        // Regression: before jobs ran under catch_unwind, one panicking
        // job killed its worker thread for the life of the pool. With two
        // workers and two panics, every later job would hang forever and
        // the batch would silently lose frames. Now the workers survive,
        // the panics are counted, and all later jobs still complete.
        crate::resilience::quiet_injected_panics();
        let pool = WorkerPool::new(2);
        for frame in 0..2usize {
            pool.execute(move |_| crate::resilience::injected_panic(frame))
                .expect("pool accepts jobs before drop");
        }
        let (tx, rx) = channel::unbounded();
        for i in 0..10usize {
            let tx = tx.clone();
            pool.execute(move |_| tx.send(i).expect("collector alive"))
                .expect("pool accepts jobs before drop");
        }
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>(), "pool lost jobs");
        assert_eq!(pool.panicked_jobs(), 2);
    }

    #[test]
    fn batch_matches_sequential_stream_accounting() {
        let frames: Vec<_> = (0..4).map(frame).collect();
        let esca = Esca::new(EscaConfig::default()).unwrap();
        let seq = esca.run_network_stream(&frames, &layers()).unwrap();
        let session = StreamingSession::new(esca, layers(), 3);
        let report = session.run_batch(&frames).unwrap();
        assert_eq!(report.per_frame, seq);
        assert_eq!(report.frames(), 4);
        // Frame 0 carries the weight load; the probe shows it.
        assert!(report.weight_load_cycles() > 0);
    }

    #[test]
    fn batch_outputs_match_per_frame_network_runs() {
        let frames: Vec<_> = (0..3).map(|i| frame(i + 50)).collect();
        let esca = Esca::new(EscaConfig::default()).unwrap();
        let session = StreamingSession::new(esca.clone(), layers(), 2);
        let report = session.run_batch(&frames).unwrap();
        for (f, out) in frames.iter().zip(&report.outputs) {
            let net = esca.run_network(f, &layers()).unwrap();
            assert!(net.output.same_content(out));
        }
    }

    #[test]
    fn golden_batch_matches_cycle_batch_outputs() {
        let frames: Vec<_> = (0..3).map(|i| frame(i + 90)).collect();
        let esca = Esca::new(EscaConfig::default()).unwrap();
        let session = StreamingSession::new(esca, layers(), 2);
        let report = session.run_batch(&frames).unwrap();
        let golden = session.run_golden_batch(&frames).unwrap();
        assert_eq!(golden.len(), 3);
        for (g, o) in golden.iter().zip(&report.outputs) {
            assert_eq!(g.coords(), o.coords(), "storage order differs");
            assert_eq!(g.features(), o.features(), "values not bitwise equal");
        }
    }

    #[test]
    fn golden_batch_shares_matching_across_frames_and_sessions() {
        // Static geometry: every frame carries the same active set, so the
        // whole batch costs one rulebook build. One worker keeps the
        // hit/miss split deterministic (concurrent first lookups may race
        // to build). Plan cache explicitly detached: this test pins the
        // per-layer probe counts, which a plan replay would (by design)
        // freeze after the first frame.
        let frames: Vec<_> = (0..4).map(|_| frame(123)).collect();
        let esca = Esca::new(EscaConfig::default()).unwrap();
        let session = StreamingSession::new(esca, layers(), 1).with_plan_cache(None);
        let out = session.run_golden_batch(&frames).unwrap();
        assert_eq!(out.len(), 4);
        let cache = session.rulebook_cache();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
        // A pre-warmed shared cache carries over into another session.
        let esca2 = Esca::new(EscaConfig::default()).unwrap();
        let session2 = StreamingSession::new(esca2, layers(), 2)
            .with_rulebook_cache(Arc::clone(cache))
            .with_plan_cache(None);
        let out2 = session2.run_golden_batch(&frames[..1]).unwrap();
        assert_eq!(out2[0].features(), out[0].features());
        assert_eq!(session2.rulebook_cache().misses(), 1, "no new builds");
    }

    #[test]
    fn static_scene_batch_goes_matching_resident_after_frame_zero() {
        // 6 frames of identical geometry: with a plan cache attached,
        // frame 0 pays the matching pass and every later frame runs
        // matching-resident — zero match cycles, zero scan work.
        let frames: Vec<_> = (0..6).map(|_| frame(321)).collect();
        let esca = Esca::new(EscaConfig::default()).unwrap();
        let baseline = StreamingSession::new(esca.clone(), layers(), 2)
            .with_plan_cache(None)
            .run_batch(&frames)
            .unwrap();
        let session = StreamingSession::new(esca, layers(), 2)
            .with_plan_cache(Some(Arc::new(PlanCache::new())));
        let report = session.run_batch(&frames).unwrap();
        // Outputs are bit-identical with and without residency.
        for (a, b) in report.outputs.iter().zip(&baseline.outputs) {
            assert_eq!(a.coords(), b.coords());
            assert_eq!(a.features(), b.features());
        }
        assert!(!report.per_frame[0].matching_resident);
        assert!(report.per_frame[0].match_cycles > 0);
        for f in &report.per_frame[1..] {
            assert!(f.matching_resident);
            assert_eq!(f.match_cycles, 0);
            assert_eq!(f.scanned_sites, 0);
            assert_eq!(f.mask_bits_read, 0);
            assert_eq!(f.fifo_pushes, 0);
            assert_eq!(f.zero_removing_cycles, 0);
            assert!(f.total_cycles() < report.per_frame[0].total_cycles());
        }
        // The resident-frame count lands in the cycle-domain registry.
        assert!(report
            .telemetry
            .cycle
            .counters
            .iter()
            .any(|c| c.name == "esca_stream_resident_frames_total" && c.value == 5));
        // A fresh batch over the same session starts resident immediately:
        // the hint probe sees the plans left by run_golden_batch.
        let golden = session.run_golden_batch(&frames[..1]).unwrap();
        assert_eq!(golden[0].features(), report.outputs[0].features());
        let warm = session.run_batch(&frames[..2]).unwrap();
        assert!(warm.per_frame[0].matching_resident, "warm plan not probed");
        assert!(warm.per_frame[1].matching_resident);
    }

    #[test]
    fn resident_cycle_telemetry_is_identical_across_worker_and_shard_splits() {
        // The plan-cache residency hints are derived before scheduling, so
        // the cycle-domain snapshot stays byte-identical for every
        // (workers, layer_shards) split even though resident frames take a
        // different accounting path.
        let frames: Vec<_> = (0..4).map(|_| frame(77)).collect();
        let mut snapshots = Vec::new();
        for (workers, shards) in [(1usize, 1usize), (3, 1), (2, 2)] {
            let esca = Esca::new(EscaConfig::default()).unwrap();
            let session = StreamingSession::new(esca, layers(), workers)
                .with_layer_shards(shards)
                .with_plan_cache(Some(Arc::new(PlanCache::new())));
            let report = session.run_batch(&frames).unwrap();
            snapshots.push(report.telemetry.cycle);
        }
        assert_eq!(snapshots[0], snapshots[1]);
        assert_eq!(snapshots[0], snapshots[2]);
    }

    #[test]
    fn golden_batch_replays_whole_network_plans() {
        // Static scene, one worker: frame 0 records the whole-network
        // plan, frames 1..N replay it with zero per-layer cache probes.
        let frames: Vec<_> = (0..4).map(|_| frame(123)).collect();
        let esca = Esca::new(EscaConfig::default()).unwrap();
        let plans = Arc::new(PlanCache::new());
        let session =
            StreamingSession::new(esca, layers(), 1).with_plan_cache(Some(Arc::clone(&plans)));
        let out = session.run_golden_batch(&frames).unwrap();
        assert_eq!((plans.misses(), plans.hits()), (1, 3));
        assert!((plans.hit_rate() - 0.75).abs() < 1e-12);
        // Recording frame 0 probed the per-layer cache once per layer;
        // the three replays added nothing.
        let cache = session.rulebook_cache();
        assert_eq!(cache.misses() + cache.hits(), 2, "replays probed the cache");
        // Replayed outputs are bit-identical to the recorded frame's.
        for o in &out[1..] {
            assert_eq!(o.features(), out[0].features());
        }
    }

    #[test]
    fn modeled_deployment_scales_and_is_deterministic() {
        let frames: Vec<_> = (0..8).map(|i| frame(i + 7)).collect();
        let esca = Esca::new(EscaConfig::default()).unwrap();
        let session = StreamingSession::new(esca, layers(), 4);
        let report = session.run_batch(&frames).unwrap();
        let m1 = report.modeled(1);
        let m4 = report.modeled(4);
        assert_eq!(m1.makespan_cycles, report.modeled(1).makespan_cycles);
        assert!(m4.makespan_cycles < m1.makespan_cycles);
        assert!(m4.speedup > 1.0);
        assert!(m4.frames_per_s > m1.frames_per_s);
        // Single-engine modeled makespan equals the steady timeline plus
        // one weight load.
        let expected: u64 =
            report.steady_frame_cycles().iter().sum::<u64>() + report.weight_load_cycles();
        assert_eq!(m1.makespan_cycles, expected);
    }

    #[test]
    fn latency_percentile_is_total_over_p() {
        let frames: Vec<_> = (0..4).map(frame).collect();
        let esca = Esca::new(EscaConfig::default()).unwrap();
        let session = StreamingSession::new(esca, layers(), 2);
        let report = session.run_batch(&frames).unwrap();
        let min = *report.frame_wall.iter().min().unwrap();
        let max = *report.frame_wall.iter().max().unwrap();
        // In-range percentiles bracket between min and max.
        let p50 = report.latency_percentile(50.0);
        assert!(min <= p50 && p50 <= max);
        // Out-of-range and non-finite p clamp instead of panicking.
        assert_eq!(report.latency_percentile(-10.0), min);
        assert_eq!(report.latency_percentile(250.0), max);
        assert_eq!(report.latency_percentile(f64::INFINITY), min);
        assert_eq!(report.latency_percentile(f64::NEG_INFINITY), min);
        assert_eq!(report.latency_percentile(f64::NAN), min);
        assert_eq!(report.latency_percentile(0.0), min);
        assert_eq!(report.latency_percentile(100.0), max);
    }

    #[test]
    fn cycle_telemetry_is_identical_across_worker_counts() {
        let frames: Vec<_> = (0..4).map(|i| frame(i + 300)).collect();
        let mut snapshots = Vec::new();
        for workers in [1usize, 3] {
            let esca = Esca::new(EscaConfig::default()).unwrap();
            let session = StreamingSession::new(esca, layers(), workers);
            let report = session.run_batch(&frames).unwrap();
            // Cycle-domain series must exist...
            assert!(report
                .telemetry
                .cycle
                .counters
                .iter()
                .any(|c| c.name == "esca_cycles_total"));
            assert!(report
                .telemetry
                .cycle
                .histograms
                .iter()
                .any(|h| h.name == "esca_frame_cycles" && h.count == 4));
            // ...and wall-clock only in the host domain.
            assert!(!report
                .telemetry
                .cycle
                .histograms
                .iter()
                .any(|h| h.name.contains("wall")));
            assert!(report
                .telemetry
                .host
                .histograms
                .iter()
                .any(|h| h.name == "esca_frame_wall_micros" && h.count == 4));
            let per_worker: u64 = report
                .telemetry
                .host
                .counters
                .iter()
                .filter(|c| c.name == "esca_worker_frames_total")
                .map(|c| c.value)
                .sum();
            assert_eq!(per_worker, 4, "every frame attributed to a worker");
            snapshots.push(report.telemetry.cycle);
        }
        assert_eq!(snapshots[0], snapshots[1]);
    }

    #[test]
    fn modeled_schedule_backs_the_deployment_and_trace() {
        let frames: Vec<_> = (0..6).map(|i| frame(i + 11)).collect();
        let esca = Esca::new(EscaConfig::default()).unwrap();
        let session = StreamingSession::new(esca, layers(), 2);
        let report = session.run_batch(&frames).unwrap();
        let schedule = report.modeled_schedule(3);
        assert_eq!(schedule.len(), 6);
        // The schedule's makespan is exactly what modeled() reports.
        let span = schedule.iter().map(|s| s.start_cycle + s.cycles).max();
        assert_eq!(span, Some(report.modeled(3).makespan_cycles));
        // Slots on one engine never overlap.
        for a in &schedule {
            for b in &schedule {
                if a.frame != b.frame && a.engine == b.engine {
                    let disjoint = a.start_cycle + a.cycles <= b.start_cycle
                        || b.start_cycle + b.cycles <= a.start_cycle;
                    assert!(disjoint, "overlap on engine {}", a.engine);
                }
            }
        }
        // The trace mirrors the schedule one event per frame.
        let trace = report.to_chrome_trace(3);
        assert_eq!(trace.len(), 6);
        for (ev, slot) in trace.traceEvents.iter().zip(&schedule) {
            assert_eq!(ev.ph, "X");
            assert_eq!(ev.ts, slot.start_cycle);
            assert_eq!(ev.dur, slot.cycles);
            assert_eq!(ev.tid, slot.engine as u32);
        }
    }

    #[test]
    fn empty_batch_is_trivial() {
        let esca = Esca::new(EscaConfig::default()).unwrap();
        let session = StreamingSession::new(esca, layers(), 2);
        let report = session.run_batch(&[]).unwrap();
        assert_eq!(report.frames(), 0);
        assert_eq!(report.wall_fps(), 0.0);
        assert_eq!(report.latency_percentile(50.0), Duration::ZERO);
        assert_eq!(report.modeled(4).makespan_cycles, 0);
    }

    #[test]
    fn frame_errors_surface_deterministically() {
        // Channel mismatch on every frame: the reported error must be
        // frame 0's regardless of completion order.
        let bad: Vec<_> = (0..3)
            .map(|s| {
                let mut rng = ChaCha12Rng::seed_from_u64(s);
                let mut t = SparseTensor::<f32>::new(Extent3::cube(8), 3);
                t.insert(Coord3::new(rng.gen_range(0..8), 1, 1), &[1.0, 2.0, 3.0])
                    .unwrap();
                t.canonicalize();
                quantize_tensor(&t, QuantParams::new(8).unwrap())
            })
            .collect();
        let esca = Esca::new(EscaConfig::default()).unwrap();
        let session = StreamingSession::new(esca, layers(), 2);
        assert!(matches!(
            session.run_batch(&bad),
            Err(crate::EscaError::ChannelMismatch { .. })
        ));
        // The golden path surfaces the mismatch too (wrapped golden-model
        // error rather than the accelerator's own variant).
        assert!(session.run_golden_batch(&bad).is_err());
    }
}
