//! Bounded ingest admission for the streaming service: per-arrival
//! queue discipline, per-tenant token-bucket quotas, and the
//! load-shedding ladder.
//!
//! A deployed accelerator front-end sees *arrivals*, not batches: frames
//! from many tenants land against a bounded queue while the worker pool
//! drains it at a finite rate. This module models that ingest plane as a
//! deterministic single-server discrete-event simulation, evaluated
//! **sequentially on the calling thread before any pool submission** —
//! the same pre-submit pattern as residency hints — so every verdict is
//! a pure function of `(config, arrival sequence)` and the cycle-domain
//! telemetry derived from it stays byte-identical across any
//! `(workers, shards)` split.
//!
//! The per-arrival **shedding ladder** (top rung wins):
//!
//! 1. **quota** — the tenant's token bucket is empty → the arrival is
//!    rejected `over_quota` without touching the queue;
//! 2. **admit** — the queue has room and occupancy is below the degrade
//!    threshold → the frame runs at full fidelity;
//! 3. **degrade** — the queue has room but occupancy is at/above the
//!    threshold → the frame is admitted **resident-plan-only**
//!    ([`crate::accelerator::LayerOpts::matching_resident`]): outputs
//!    stay bit-identical, only the matching pipeline's cycles are shed;
//! 4. **shed** — the queue is full but a *waiting* frame of a strictly
//!    lower-priority tenant exists → that victim is shed (`shed{T}`) and
//!    the arrival takes its place;
//! 5. **backpressure** — the queue is full and nothing outranked:
//!    [`BackpressurePolicy::RejectNew`] rejects the arrival,
//!    [`BackpressurePolicy::DropOldest`] evicts the oldest waiting frame
//!    (the in-service head is never preempted).
//!
//! Closing the loop, [`select_operating_point`] picks a policy from an
//! availability/latency Pareto front swept by the `slo_front` bench bin;
//! the choice is published through `/healthz`
//! ([`esca_telemetry::serve::HealthReport::operating_point`]).

use crate::resilience::BackpressurePolicy;
use esca_telemetry::serve::OperatingPoint;
use esca_telemetry::Registry;
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};

/// Degrade-threshold sentinel: occupancy can never reach this, so the
/// degrade rung of the ladder is disabled.
pub const DEGRADE_DISABLED: u32 = 101;

// ---------------------------------------------------------------------------
// Tenants and quotas
// ---------------------------------------------------------------------------

/// Per-tenant token-bucket quota and shedding priority.
///
/// The bucket holds up to [`TenantQuota::burst`] tokens and refills one
/// token every [`TenantQuota::cycles_per_token`] cycles of the arrival
/// clock (integer-exact: the remainder carries, never rounds). Each
/// admitted or degraded frame spends one token; an arrival finding the
/// bucket empty is rejected `over_quota` before it can occupy a queue
/// slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TenantQuota {
    /// Tenant id the quota applies to.
    pub tenant: u32,
    /// Cycles of arrival-clock time per refilled token; `0` = unlimited
    /// (the bucket never empties).
    pub cycles_per_token: u64,
    /// Bucket capacity (burst size). Clamped to at least 1 when the
    /// quota is limited.
    pub burst: u64,
    /// Shedding priority: when the queue is full, a waiting frame whose
    /// tenant priority is **strictly lower** than the arrival's may be
    /// shed in its favour. Higher value = more important.
    pub priority: u8,
}

impl TenantQuota {
    /// An unlimited quota at the lowest priority — the behaviour of any
    /// tenant without an explicit [`AdmissionConfig::tenants`] entry.
    pub fn unlimited(tenant: u32) -> Self {
        TenantQuota {
            tenant,
            cycles_per_token: 0,
            burst: 0,
            priority: 0,
        }
    }
}

/// Configuration of the bounded ingest queue.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AdmissionConfig {
    /// Total in-system bound (one in service + waiting). Clamped ≥ 1.
    pub queue_depth: usize,
    /// Modeled service time per frame, cycles: the rate the single
    /// server drains the queue at. `u64::MAX` means nothing drains
    /// within a batch (the legacy one-burst mask).
    pub drain_cycles: u64,
    /// Queue occupancy percentage (pre-insert, `in_system * 100 /
    /// queue_depth`) at/above which new admissions run degraded
    /// (resident-plan-only). [`DEGRADE_DISABLED`] (or anything > 100)
    /// disables the rung.
    pub degrade_occupancy_pct: u32,
    /// Per-tenant quotas; tenants without an entry get
    /// [`TenantQuota::unlimited`].
    pub tenants: Vec<TenantQuota>,
    /// What happens on the bottom rung of the ladder (queue full, no
    /// lower-priority victim).
    pub backpressure: BackpressurePolicy,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_depth: 64,
            drain_cycles: 10_000,
            degrade_occupancy_pct: DEGRADE_DISABLED,
            tenants: Vec::new(),
            backpressure: BackpressurePolicy::RejectNew,
        }
    }
}

impl AdmissionConfig {
    /// The queue configuration that reproduces the pre-queue one-burst
    /// admission mask of [`crate::resilience::RecoveryPolicy`]: every
    /// frame arrives at cycle 0, nothing drains mid-burst, no quotas, no
    /// degrade rung. `RejectNew` admits the first `depth` arrivals
    /// exactly as before; `DropOldest` keeps the (non-preemptible)
    /// in-service head plus the newest `depth - 1` arrivals.
    pub fn legacy_burst(
        depth: Option<usize>,
        backpressure: BackpressurePolicy,
        frames: usize,
    ) -> Self {
        AdmissionConfig {
            queue_depth: depth.map_or(frames.max(1), |d| d.max(1)),
            drain_cycles: u64::MAX,
            degrade_occupancy_pct: DEGRADE_DISABLED,
            tenants: Vec::new(),
            backpressure,
        }
    }

    /// Stable policy label for `/healthz` and reports.
    pub fn policy_label(&self) -> &'static str {
        match self.backpressure {
            BackpressurePolicy::RejectNew => "reject_new",
            BackpressurePolicy::DropOldest => "drop_oldest",
        }
    }

    /// The quota governing `tenant` (explicit entry or unlimited).
    pub fn quota_for(&self, tenant: u32) -> TenantQuota {
        self.tenants
            .iter()
            .find(|q| q.tenant == tenant)
            .copied()
            .unwrap_or_else(|| TenantQuota::unlimited(tenant))
    }
}

// ---------------------------------------------------------------------------
// Arrivals and verdicts
// ---------------------------------------------------------------------------

/// One frame arriving at the ingest queue. `at_cycle` is a
/// **cycle-domain** stamp (a fact of the workload, like the frame data
/// itself), never a wall-clock reading — that is what keeps admission
/// verdicts byte-identical across worker and shard counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Arrival {
    /// Index of the frame in the batch slice.
    pub frame: usize,
    /// Owning tenant id.
    pub tenant: u32,
    /// Arrival stamp on the cycle-domain clock; clamped monotonic in
    /// offer order.
    pub at_cycle: u64,
}

/// Final fate of one arrival at the ingest queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Admitted at full fidelity.
    Admitted,
    /// Admitted resident-plan-only (occupancy at/above the degrade
    /// threshold): bit-identical output, matching cycles shed.
    Degraded,
    /// Was waiting but a higher-priority arrival took its slot.
    Shed {
        /// Tenant of the shed (victim) frame.
        tenant: u32,
    },
    /// Was waiting but evicted by [`BackpressurePolicy::DropOldest`].
    Evicted,
    /// Rejected at arrival: queue full, nothing outranked.
    RejectedQueueFull,
    /// Rejected at arrival: the tenant's token bucket was empty.
    RejectedOverQuota,
}

impl AdmissionVerdict {
    /// Whether the frame reaches the worker pool.
    pub fn runs(self) -> bool {
        matches!(
            self,
            AdmissionVerdict::Admitted | AdmissionVerdict::Degraded
        )
    }

    /// Flight-recorder label (`shed{T}` names the victim's tenant).
    pub fn label(self) -> String {
        match self {
            AdmissionVerdict::Admitted => "admitted".to_string(),
            AdmissionVerdict::Degraded => "degraded".to_string(),
            AdmissionVerdict::Shed { tenant } => format!("shed{{{tenant}}}"),
            AdmissionVerdict::Evicted => "evicted".to_string(),
            AdmissionVerdict::RejectedQueueFull => "rejected".to_string(),
            AdmissionVerdict::RejectedOverQuota => "over_quota".to_string(),
        }
    }

    /// Tenant-free label for bounded-cardinality metric series.
    pub fn class_label(self) -> &'static str {
        match self {
            AdmissionVerdict::Admitted => "admitted",
            AdmissionVerdict::Degraded => "degraded",
            AdmissionVerdict::Shed { .. } => "shed",
            AdmissionVerdict::Evicted => "evicted",
            AdmissionVerdict::RejectedQueueFull => "rejected",
            AdmissionVerdict::RejectedOverQuota => "over_quota",
        }
    }

    /// Every verdict class, in metric-series order.
    pub const CLASSES: [&'static str; 6] = [
        "admitted",
        "degraded",
        "shed",
        "evicted",
        "rejected",
        "over_quota",
    ];
}

// Manual impl: the vendored serde derive handles unit variants only;
// the flight-recorder label (`shed{T}` carrying the victim's tenant) is
// the JSON shape consumers already parse.
impl Serialize for AdmissionVerdict {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str(self.label())
    }
}

/// One arrival's record after the queue has seen the whole sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct AdmissionRecord {
    /// Frame index of the arrival.
    pub frame: usize,
    /// Owning tenant id.
    pub tenant: u32,
    /// (Monotonically clamped) arrival stamp, cycle domain.
    pub at_cycle: u64,
    /// Final verdict — an initial `Admitted` can later become
    /// `Shed`/`Evicted` while the frame waits.
    pub verdict: AdmissionVerdict,
    /// Cycle the modeled server began this frame (admitted frames only;
    /// saturates under `drain_cycles = u64::MAX`).
    pub start_cycle: Option<u64>,
}

impl AdmissionRecord {
    /// Modeled queueing delay: cycles between arrival and service start.
    pub fn queue_wait_cycles(&self) -> u64 {
        self.start_cycle
            .map_or(0, |s| s.saturating_sub(self.at_cycle))
    }
}

// ---------------------------------------------------------------------------
// The bounded ingest queue
// ---------------------------------------------------------------------------

/// Per-tenant token-bucket state (integer-exact refill).
#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: u64,
    remainder_cycles: u64,
    last_refill: u64,
}

/// Everything the queue decided about one arrival sequence.
#[derive(Debug, Clone)]
pub struct AdmissionOutcome {
    /// One record per arrival, in offer order.
    pub records: Vec<AdmissionRecord>,
    /// Peak in-system occupancy (in service + waiting) observed.
    pub peak_in_system: usize,
}

/// The bounded ingest queue: a deterministic single-server
/// discrete-event model fed arrivals in order. See the module docs for
/// the ladder it implements.
#[derive(Debug)]
pub struct IngestQueue {
    cfg: AdmissionConfig,
    buckets: BTreeMap<u32, Bucket>,
    /// Record index currently in service, if any.
    in_service: Option<usize>,
    /// Cycle the in-service frame finishes.
    busy_until: u64,
    /// Record indices waiting behind the server, oldest first.
    waiting: VecDeque<usize>,
    records: Vec<AdmissionRecord>,
    peak_in_system: usize,
    now: u64,
}

impl IngestQueue {
    /// An empty queue under `cfg` (depth clamped ≥ 1).
    pub fn new(cfg: &AdmissionConfig) -> Self {
        let mut cfg = cfg.clone();
        cfg.queue_depth = cfg.queue_depth.max(1);
        let depth = cfg.queue_depth;
        IngestQueue {
            cfg,
            buckets: BTreeMap::new(),
            in_service: None,
            busy_until: 0,
            waiting: VecDeque::with_capacity(depth),
            records: Vec::new(),
            peak_in_system: 0,
            now: 0,
        }
    }

    /// Convenience: offer every arrival in order and finish.
    pub fn evaluate(cfg: &AdmissionConfig, arrivals: &[Arrival]) -> AdmissionOutcome {
        let mut q = IngestQueue::new(cfg);
        for a in arrivals {
            q.offer(*a);
        }
        q.finish()
    }

    /// In-system occupancy (in service + waiting).
    fn in_system(&self) -> usize {
        usize::from(self.in_service.is_some()) + self.waiting.len()
    }

    /// Completes served frames up to cycle `t`, chaining the next waiter
    /// at each finish instant.
    fn drain_until(&mut self, t: u64) {
        while self.in_service.is_some() && self.busy_until <= t {
            self.in_service = None;
            let finish = self.busy_until;
            if let Some(next) = self.waiting.pop_front() {
                self.records[next].start_cycle = Some(finish);
                self.in_service = Some(next);
                self.busy_until = finish.saturating_add(self.cfg.drain_cycles);
            }
        }
    }

    /// Places record `i` behind the server (or straight into service).
    fn enqueue(&mut self, i: usize, t: u64) {
        if self.in_service.is_none() {
            self.records[i].start_cycle = Some(t);
            self.in_service = Some(i);
            self.busy_until = t.saturating_add(self.cfg.drain_cycles);
        } else {
            self.waiting.push_back(i);
        }
        self.peak_in_system = self.peak_in_system.max(self.in_system());
    }

    /// Refills `tenant`'s bucket up to cycle `t`; returns a copy of the
    /// bucket state after refill.
    fn refill(&mut self, quota: TenantQuota, t: u64) -> Bucket {
        let b = self.buckets.entry(quota.tenant).or_insert(Bucket {
            tokens: if quota.cycles_per_token == 0 {
                0
            } else {
                quota.burst.max(1)
            },
            remainder_cycles: 0,
            last_refill: t,
        });
        if quota.cycles_per_token > 0 {
            let burst = quota.burst.max(1);
            let dt = t.saturating_sub(b.last_refill);
            let acc = b.remainder_cycles.saturating_add(dt);
            let earned = acc.checked_div(quota.cycles_per_token).unwrap_or(0);
            b.tokens = b.tokens.saturating_add(earned).min(burst);
            b.remainder_cycles = if b.tokens == burst {
                0
            } else {
                acc.checked_rem(quota.cycles_per_token).unwrap_or(0)
            };
        }
        b.last_refill = t;
        *b
    }

    /// Spends one token from `tenant`'s bucket (no-op when unlimited).
    fn spend(&mut self, quota: TenantQuota) {
        if quota.cycles_per_token > 0 {
            if let Some(b) = self.buckets.get_mut(&quota.tenant) {
                b.tokens = b.tokens.saturating_sub(1);
            }
        }
    }

    /// Runs one arrival through the shedding ladder. The verdict it (and
    /// possibly a shed/evicted victim) receives is final once
    /// [`IngestQueue::finish`] returns.
    pub fn offer(&mut self, a: Arrival) {
        let t = a.at_cycle.max(self.now);
        self.now = t;
        self.drain_until(t);
        let quota = self.cfg.quota_for(a.tenant);
        let i = self.records.len();
        self.records.push(AdmissionRecord {
            frame: a.frame,
            tenant: a.tenant,
            at_cycle: t,
            verdict: AdmissionVerdict::RejectedQueueFull,
            start_cycle: None,
        });

        // Rung 1: quota. An empty bucket rejects before queue state is
        // even consulted, so over-quota tenants cannot occupy slots.
        if quota.cycles_per_token > 0 && self.refill(quota, t).tokens == 0 {
            self.records[i].verdict = AdmissionVerdict::RejectedOverQuota;
            return;
        }

        let depth = self.cfg.queue_depth;
        if self.in_system() < depth {
            // Rungs 2/3: room — admit, degraded at/above the threshold.
            self.admit(i, t, quota, self.in_system());
            return;
        }

        // Rung 4: full — shed the oldest waiting frame of the
        // lowest-priority tenant, if strictly below the arrival's.
        let victim = self
            .waiting
            .iter()
            .enumerate()
            .min_by_key(|(pos, &ri)| (self.cfg.quota_for(self.records[ri].tenant).priority, *pos))
            .map(|(pos, &ri)| (pos, ri));
        if let Some((pos, ri)) = victim {
            if self.cfg.quota_for(self.records[ri].tenant).priority < quota.priority {
                self.records[ri].verdict = AdmissionVerdict::Shed {
                    tenant: self.records[ri].tenant,
                };
                self.waiting.remove(pos);
                self.admit(i, t, quota, self.in_system());
                return;
            }
        }

        // Rung 5: backpressure.
        match self.cfg.backpressure {
            BackpressurePolicy::RejectNew => {
                self.records[i].verdict = AdmissionVerdict::RejectedQueueFull;
            }
            BackpressurePolicy::DropOldest => match self.waiting.pop_front() {
                Some(old) => {
                    self.records[old].verdict = AdmissionVerdict::Evicted;
                    self.admit(i, t, quota, self.in_system());
                }
                // Depth 1: only the non-preemptible head is in system.
                None => self.records[i].verdict = AdmissionVerdict::RejectedQueueFull,
            },
        }
    }

    /// Admits record `i` (degraded at/above the occupancy threshold),
    /// spending one token.
    fn admit(&mut self, i: usize, t: u64, quota: TenantQuota, occupancy: usize) {
        let pct = (occupancy * 100 / self.cfg.queue_depth) as u32;
        self.records[i].verdict = if pct >= self.cfg.degrade_occupancy_pct {
            AdmissionVerdict::Degraded
        } else {
            AdmissionVerdict::Admitted
        };
        self.spend(quota);
        self.enqueue(i, t);
    }

    /// Drains the model to completion and returns every record. Frames
    /// still waiting are chained through the server so their modeled
    /// `start_cycle` is defined.
    pub fn finish(mut self) -> AdmissionOutcome {
        self.drain_until(u64::MAX);
        AdmissionOutcome {
            records: self.records,
            peak_in_system: self.peak_in_system,
        }
    }
}

/// Records the admission outcome as cycle-domain metric series
/// (`esca_admission_*`, `esca_tenant_*`). Verdicts are a pure function
/// of `(config, arrivals)`, so the series are byte-identical across
/// `(workers, shards)`.
pub fn record_admission_into(outcome: &AdmissionOutcome, reg: &mut Registry) {
    let mut by_class: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut by_tenant: BTreeMap<u32, (u64, u64, u64)> = BTreeMap::new();
    for rec in &outcome.records {
        *by_class.entry(rec.verdict.class_label()).or_insert(0) += 1;
        let entry = by_tenant.entry(rec.tenant).or_insert((0, 0, 0));
        entry.0 += 1;
        if rec.verdict.runs() {
            entry.1 += 1;
        } else {
            entry.2 += 1;
        }
    }
    for class in AdmissionVerdict::CLASSES {
        reg.counter_add(
            "esca_admission_verdicts_total",
            &[("verdict", class)],
            by_class.get(class).copied().unwrap_or(0),
        );
    }
    for (tenant, (frames, admitted, shed)) in by_tenant {
        let label = tenant.to_string();
        let labels = [("tenant", label.as_str())];
        reg.counter_add("esca_tenant_frames_total", &labels, frames);
        reg.counter_add("esca_tenant_admitted_total", &labels, admitted);
        reg.counter_add("esca_tenant_shed_total", &labels, shed);
    }
    reg.gauge_max(
        "esca_admission_queue_peak",
        &[],
        outcome.peak_in_system as u64,
    );
}

// ---------------------------------------------------------------------------
// SLO operating-point selection
// ---------------------------------------------------------------------------

/// The SLO an [`OperatingPoint`] must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SloTarget {
    /// Minimum availability, parts-per-million of submitted frames.
    pub min_availability_ppm: u64,
    /// Maximum p99 latency, cycles (`0` = unbounded).
    pub max_p99_latency_cycles: u64,
}

impl Default for SloTarget {
    fn default() -> Self {
        SloTarget {
            min_availability_ppm: 900_000,
            max_p99_latency_cycles: 0,
        }
    }
}

/// `true` when `a` dominates `b` on the (availability ↑, p99 ↓) plane.
fn dominates(a: &OperatingPoint, b: &OperatingPoint) -> bool {
    a.availability_ppm >= b.availability_ppm
        && a.p99_latency_cycles <= b.p99_latency_cycles
        && (a.availability_ppm > b.availability_ppm || a.p99_latency_cycles < b.p99_latency_cycles)
}

/// The non-dominated subset of `points` on the availability/latency
/// plane, sorted by rising latency (deterministic tie-break on the full
/// policy tuple). Duplicate (availability, p99) pairs keep one entry.
pub fn pareto_front(points: &[OperatingPoint]) -> Vec<OperatingPoint> {
    let mut front: Vec<OperatingPoint> = Vec::new();
    for p in points {
        if points.iter().any(|q| dominates(q, p)) {
            continue;
        }
        if !front.iter().any(|q| {
            q.availability_ppm == p.availability_ppm && q.p99_latency_cycles == p.p99_latency_cycles
        }) {
            front.push(*p);
        }
    }
    front.sort_by_key(|p| {
        (
            p.p99_latency_cycles,
            std::cmp::Reverse(p.availability_ppm),
            p.queue_depth,
            p.fault_rate_ppm,
            p.cycle_budget,
            p.max_retries,
        )
    });
    front
}

/// Picks the operating point for `slo` from `points`: the cheapest
/// (lowest p99) point meeting the availability floor and latency
/// ceiling; ties break on higher availability, then the smaller policy
/// tuple. When no point meets the SLO the best-effort point (highest
/// availability, then lowest p99) is returned. `None` only for an empty
/// sweep.
pub fn select_operating_point(
    points: &[OperatingPoint],
    slo: &SloTarget,
) -> Option<OperatingPoint> {
    let front = pareto_front(points);
    let meets = |p: &&OperatingPoint| {
        p.availability_ppm >= slo.min_availability_ppm
            && (slo.max_p99_latency_cycles == 0
                || p.p99_latency_cycles <= slo.max_p99_latency_cycles)
    };
    front
        .iter()
        .filter(meets)
        .min_by_key(|p| {
            (
                p.p99_latency_cycles,
                std::cmp::Reverse(p.availability_ppm),
                p.queue_depth,
                p.fault_rate_ppm,
                p.cycle_budget,
                p.max_retries,
            )
        })
        .or_else(|| {
            front.iter().min_by_key(|p| {
                (
                    std::cmp::Reverse(p.availability_ppm),
                    p.p99_latency_cycles,
                    p.queue_depth,
                )
            })
        })
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals(spec: &[(usize, u32, u64)]) -> Vec<Arrival> {
        spec.iter()
            .map(|&(frame, tenant, at_cycle)| Arrival {
                frame,
                tenant,
                at_cycle,
            })
            .collect()
    }

    fn verdicts(out: &AdmissionOutcome) -> Vec<String> {
        out.records.iter().map(|r| r.verdict.label()).collect()
    }

    #[test]
    fn token_bucket_refill_is_integer_exact() {
        let cfg = AdmissionConfig {
            queue_depth: 8,
            drain_cycles: 1,
            tenants: vec![TenantQuota {
                tenant: 0,
                cycles_per_token: 1000,
                burst: 1,
                priority: 0,
            }],
            ..AdmissionConfig::default()
        };
        // Burst token at t=0; refills land exactly every 1000 cycles,
        // with the 999-cycle remainder carrying (1999 = 999 + 1000).
        let out = IngestQueue::evaluate(
            &cfg,
            &arrivals(&[
                (0, 0, 0),
                (1, 0, 999),
                (2, 0, 1000),
                (3, 0, 1999),
                (4, 0, 2000),
            ]),
        );
        assert_eq!(
            verdicts(&out),
            vec![
                "admitted",
                "over_quota",
                "admitted",
                "over_quota",
                "admitted"
            ]
        );
    }

    #[test]
    fn ladder_admits_degrades_sheds_and_rejects() {
        let cfg = AdmissionConfig {
            queue_depth: 3,
            drain_cycles: u64::MAX,
            degrade_occupancy_pct: 66,
            tenants: vec![TenantQuota {
                tenant: 1,
                cycles_per_token: 0,
                burst: 0,
                priority: 1,
            }],
            ..AdmissionConfig::default()
        };
        // t0 frames fill the queue (the third lands degraded at 66%
        // occupancy); a t1 arrival sheds the oldest *waiting* t0 frame
        // (frame 0 is in service, never preempted); a final t0 arrival
        // finds no lower-priority victim and is rejected.
        let out = IngestQueue::evaluate(
            &cfg,
            &arrivals(&[(0, 0, 0), (1, 0, 0), (2, 0, 0), (3, 1, 0), (4, 0, 0)]),
        );
        assert_eq!(
            verdicts(&out),
            vec!["admitted", "shed{0}", "degraded", "degraded", "rejected"]
        );
        assert_eq!(out.peak_in_system, 3);
    }

    #[test]
    fn drop_oldest_evicts_waiting_never_the_head() {
        let cfg = AdmissionConfig::legacy_burst(Some(2), BackpressurePolicy::DropOldest, 6);
        let out = IngestQueue::evaluate(
            &cfg,
            &arrivals(&[
                (0, 0, 0),
                (1, 0, 0),
                (2, 0, 0),
                (3, 0, 0),
                (4, 0, 0),
                (5, 0, 0),
            ]),
        );
        // Head (frame 0) is in service and survives; the single waiting
        // slot churns, leaving the newest arrival.
        assert_eq!(
            verdicts(&out),
            vec!["admitted", "evicted", "evicted", "evicted", "evicted", "admitted"]
        );
    }

    #[test]
    fn legacy_burst_reject_new_matches_the_old_mask() {
        let cfg = AdmissionConfig::legacy_burst(Some(3), BackpressurePolicy::RejectNew, 5);
        let out = IngestQueue::evaluate(
            &cfg,
            &arrivals(&[(0, 0, 0), (1, 0, 0), (2, 0, 0), (3, 0, 0), (4, 0, 0)]),
        );
        assert_eq!(
            verdicts(&out),
            vec!["admitted", "admitted", "admitted", "rejected", "rejected"]
        );
    }

    #[test]
    fn drain_model_frees_slots_and_stamps_service_start() {
        let cfg = AdmissionConfig {
            queue_depth: 2,
            drain_cycles: 1000,
            ..AdmissionConfig::default()
        };
        // 2x overload: arrivals every 500 cycles against a 1000-cycle
        // server. The queue oscillates full/with-room.
        let out = IngestQueue::evaluate(
            &cfg,
            &arrivals(&[
                (0, 0, 0),
                (1, 0, 500),
                (2, 0, 1000),
                (3, 0, 1500),
                (4, 0, 2000),
            ]),
        );
        assert_eq!(
            verdicts(&out),
            vec!["admitted", "admitted", "admitted", "rejected", "admitted"]
        );
        // Service chains back-to-back at the modeled drain rate.
        assert_eq!(out.records[0].start_cycle, Some(0));
        assert_eq!(out.records[1].start_cycle, Some(1000));
        assert_eq!(out.records[2].start_cycle, Some(2000));
        assert_eq!(out.records[4].start_cycle, Some(3000));
        assert_eq!(out.records[4].queue_wait_cycles(), 1000);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let cfg = AdmissionConfig {
            queue_depth: 2,
            drain_cycles: 700,
            degrade_occupancy_pct: 50,
            tenants: vec![TenantQuota {
                tenant: 1,
                cycles_per_token: 2000,
                burst: 2,
                priority: 3,
            }],
            ..AdmissionConfig::default()
        };
        let arr = arrivals(&[
            (0, 0, 0),
            (1, 1, 100),
            (2, 0, 200),
            (3, 1, 300),
            (4, 0, 900),
            (5, 1, 1000),
        ]);
        let a = IngestQueue::evaluate(&cfg, &arr);
        let b = IngestQueue::evaluate(&cfg, &arr);
        assert_eq!(a.records, b.records);
        assert_eq!(a.peak_in_system, b.peak_in_system);
    }

    #[test]
    fn admission_metrics_partition_by_verdict_and_tenant() {
        let cfg = AdmissionConfig {
            queue_depth: 2,
            drain_cycles: u64::MAX,
            tenants: vec![TenantQuota {
                tenant: 1,
                cycles_per_token: 0,
                burst: 0,
                priority: 1,
            }],
            ..AdmissionConfig::default()
        };
        let out = IngestQueue::evaluate(
            &cfg,
            &arrivals(&[(0, 0, 0), (1, 0, 0), (2, 1, 0), (3, 0, 0)]),
        );
        let mut reg = Registry::new();
        record_admission_into(&out, &mut reg);
        let snap = esca_telemetry::TelemetrySnapshot::from_registries(&reg, &Registry::new());
        let get = |name: &str, key: &str, value: &str| {
            snap.cycle
                .counters
                .iter()
                .find(|c| c.name == name && c.labels.iter().any(|(k, v)| k == key && v == value))
                .map(|c| c.value)
        };
        assert_eq!(
            get("esca_admission_verdicts_total", "verdict", "admitted"),
            Some(2)
        );
        assert_eq!(
            get("esca_admission_verdicts_total", "verdict", "shed"),
            Some(1)
        );
        assert_eq!(
            get("esca_admission_verdicts_total", "verdict", "rejected"),
            Some(1)
        );
        assert_eq!(get("esca_tenant_frames_total", "tenant", "0"), Some(3));
        assert_eq!(get("esca_tenant_shed_total", "tenant", "0"), Some(2));
        assert_eq!(get("esca_tenant_admitted_total", "tenant", "1"), Some(1));
    }

    fn op(avail: u64, p99: u64, depth: u64) -> OperatingPoint {
        OperatingPoint {
            fault_rate_ppm: 0,
            max_retries: 2,
            cycle_budget: 0,
            queue_depth: depth,
            availability_ppm: avail,
            p99_latency_cycles: p99,
        }
    }

    #[test]
    fn pareto_front_drops_dominated_points_and_selector_meets_slo() {
        let points = vec![
            op(600_000, 1_000, 2),
            op(900_000, 3_000, 4),
            op(1_000_000, 9_000, 8),
            // Dominated: worse availability at higher latency than depth 4.
            op(800_000, 5_000, 6),
        ];
        let front = pareto_front(&points);
        assert_eq!(front.len(), 3);
        assert!(front.iter().all(|p| p.queue_depth != 6));
        // Cheapest point meeting 85% availability is the depth-4 policy.
        let slo = SloTarget {
            min_availability_ppm: 850_000,
            max_p99_latency_cycles: 0,
        };
        assert_eq!(
            select_operating_point(&points, &slo).unwrap().queue_depth,
            4
        );
        // Unreachable SLO falls back to the best-effort point.
        let strict = SloTarget {
            min_availability_ppm: 1_000_000,
            max_p99_latency_cycles: 100,
        };
        assert_eq!(
            select_operating_point(&points, &strict)
                .unwrap()
                .queue_depth,
            8
        );
        assert_eq!(select_operating_point(&[], &slo), None);
    }
}
