//! On-chip buffer models and the DRAM traffic model.
//!
//! The paper uses four block-RAM buffers (Fig. 9): mask, activation,
//! weight and output. [`BufferModel`] tracks capacity, occupancy peaks and
//! access counts; [`DramModel`] converts transferred bytes into stall
//! cycles given the HP-port bandwidth and the configured overlap factor.

use crate::error::EscaError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// One BRAM-backed buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferModel {
    name: &'static str,
    capacity_bytes: usize,
    occupancy_bytes: usize,
    peak_bytes: usize,
    reads: u64,
    writes: u64,
}

impl BufferModel {
    /// Creates an empty buffer with the given capacity.
    pub fn new(name: &'static str, capacity_bytes: usize) -> Self {
        BufferModel {
            name,
            capacity_bytes,
            occupancy_bytes: 0,
            peak_bytes: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// Buffer name (for error messages and reports).
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Configured capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Current fill level in bytes.
    #[inline]
    pub fn occupancy_bytes(&self) -> usize {
        self.occupancy_bytes
    }

    /// Highest fill level observed.
    #[inline]
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Read access count.
    #[inline]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Write access count.
    #[inline]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Loads `bytes` into the buffer (a DMA fill).
    ///
    /// # Errors
    ///
    /// Returns [`EscaError::CapacityExceeded`] when the fill exceeds
    /// capacity — the workload does not fit this configuration.
    pub fn fill(&mut self, bytes: usize) -> Result<()> {
        let next = self.occupancy_bytes + bytes;
        if next > self.capacity_bytes {
            return Err(EscaError::CapacityExceeded {
                buffer: self.name,
                required: next,
                capacity: self.capacity_bytes,
            });
        }
        self.occupancy_bytes = next;
        self.peak_bytes = self.peak_bytes.max(next);
        Ok(())
    }

    /// Releases `bytes` (tile retired, double-buffer swap).
    pub fn drain(&mut self, bytes: usize) {
        self.occupancy_bytes = self.occupancy_bytes.saturating_sub(bytes);
    }

    /// Records `n` read accesses.
    #[inline]
    pub fn record_reads(&mut self, n: u64) {
        self.reads += n;
    }

    /// Records `n` write accesses.
    #[inline]
    pub fn record_writes(&mut self, n: u64) {
        self.writes += n;
    }

    /// Protected lines under the fault model's per-line parity scheme
    /// (`line_bytes` per line, one parity bit each — the granularity
    /// [`crate::resilience`] injects BRAM bit flips at). At least 1, so
    /// fault-site selection is total even for degenerate configs.
    pub fn parity_lines(&self, line_bytes: usize) -> usize {
        (self.capacity_bytes / line_bytes.max(1)).max(1)
    }

    /// 36 Kb BRAM blocks this buffer consumes (ZCU102 BRAM36 units),
    /// assuming full-depth packing.
    pub fn bram36(&self) -> f64 {
        (self.capacity_bytes as f64 * 8.0 / 36_864.0).ceil()
    }

    /// Point-in-time telemetry view (peak fill, capacity, access counts)
    /// for [`crate::telemetry::LayerTelemetry`].
    pub fn telemetry(&self) -> crate::telemetry::BufferTelemetry {
        crate::telemetry::BufferTelemetry {
            name: self.name,
            peak_bytes: self.peak_bytes as u64,
            capacity_bytes: self.capacity_bytes as u64,
            reads: self.reads,
            writes: self.writes,
        }
    }
}

/// DRAM traffic accounting with an overlap model: a `dram_overlap`
/// fraction of the transfer hides under compute; the rest stalls.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    bytes_in: u64,
    bytes_out: u64,
}

impl DramModel {
    /// Creates a model with zeroed counters.
    pub fn new() -> Self {
        DramModel::default()
    }

    /// Records an input transfer.
    pub fn read(&mut self, bytes: u64) {
        self.bytes_in += bytes;
    }

    /// Records an output transfer.
    pub fn write(&mut self, bytes: u64) {
        self.bytes_out += bytes;
    }

    /// Total bytes in.
    #[inline]
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in
    }

    /// Total bytes out.
    #[inline]
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out
    }

    /// Raw transfer cycles at `bytes_per_cycle` (no overlap applied).
    pub fn transfer_cycles(&self, bytes_per_cycle: f64) -> u64 {
        ((self.bytes_in + self.bytes_out) as f64 / bytes_per_cycle).ceil() as u64
    }

    /// Stall cycles after hiding `overlap` of the transfer under
    /// `compute_cycles` of useful work: the exposed portion is whatever
    /// exceeds the hideable budget.
    pub fn stall_cycles(&self, bytes_per_cycle: f64, overlap: f64, compute_cycles: u64) -> u64 {
        let raw = self.transfer_cycles(bytes_per_cycle);
        let hideable = ((compute_cycles as f64) * overlap) as u64;
        raw.saturating_sub(hideable.min(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_drain_and_peak() {
        let mut b = BufferModel::new("activation buffer", 1000);
        b.fill(600).unwrap();
        b.drain(200);
        b.fill(500).unwrap();
        assert_eq!(b.occupancy_bytes(), 900);
        assert_eq!(b.peak_bytes(), 900);
        b.drain(10_000);
        assert_eq!(b.occupancy_bytes(), 0);
    }

    #[test]
    fn overflow_is_an_error_naming_the_buffer() {
        let mut b = BufferModel::new("weight buffer", 100);
        let err = b.fill(101).unwrap_err();
        match err {
            EscaError::CapacityExceeded {
                buffer,
                required,
                capacity,
            } => {
                assert_eq!(buffer, "weight buffer");
                assert_eq!(required, 101);
                assert_eq!(capacity, 100);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bram_block_accounting() {
        // 36 Kb = 4608 bytes per block.
        assert_eq!(BufferModel::new("x", 4608).bram36(), 1.0);
        assert_eq!(BufferModel::new("x", 4609).bram36(), 2.0);
        assert_eq!(BufferModel::new("x", 96 * 1024).bram36(), 22.0);
    }

    #[test]
    fn dram_stall_overlap_math() {
        let mut d = DramModel::new();
        d.read(800);
        d.write(200);
        assert_eq!(d.transfer_cycles(10.0), 100);
        // 50% overlap over 100 compute cycles hides 50 cycles.
        assert_eq!(d.stall_cycles(10.0, 0.5, 100), 50);
        // Full overlap with plenty of compute hides everything.
        assert_eq!(d.stall_cycles(10.0, 1.0, 1000), 0);
        // No compute to hide under: fully exposed.
        assert_eq!(d.stall_cycles(10.0, 1.0, 0), 100);
    }

    #[test]
    fn access_counters() {
        let mut b = BufferModel::new("mask buffer", 10);
        b.record_reads(5);
        b.record_writes(2);
        assert_eq!(b.reads(), 5);
        assert_eq!(b.writes(), 2);
    }
}
