//! # esca
//!
//! A cycle-level model of **ESCA**, the FPGA accelerator for submanifold
//! sparse convolutional networks (SSCN) presented in *"An Efficient FPGA
//! Accelerator for Point Cloud"* (SOCC 2022), targeting the Xilinx ZCU102
//! at 270 MHz.
//!
//! The paper's artifact is RTL; this crate reproduces the *system* as a
//! simulator faithful to the microarchitecture, with every block from
//! Fig. 9 modelled explicitly:
//!
//! * [`zero_removing`] — the tile-based zero removing strategy (§III-A):
//!   only tiles containing at least one nonzero activation are processed;
//! * [`encode`] — the encoding scheme (§III-B): one-bit *index masks* plus
//!   *valid data* (nonzero activations banked per column line, weights);
//! * [`sdmu`] — the Sparse Data Matching Unit (§III-C): mask judger,
//!   state-index generator with the `(A, B)` accumulator, address
//!   generator, K² match FIFOs and the MUX;
//! * [`compute`] — the Computing Core (§III-D): a 16×16 array of
//!   multiply-accumulate lanes plus the accumulator;
//! * [`buffers`] — BRAM-backed mask/activation/weight/output buffers and
//!   the DRAM traffic model;
//! * [`accelerator`] — the main controller tying SDMU ∥ CC into a
//!   pipeline, executing whole layers and networks;
//! * [`area`] / [`power`] — resource (Table II) and power (Table III)
//!   models;
//! * [`trace`] — structured pipeline span traces (Fig. 7(b)) with Chrome
//!   trace-event / Perfetto export;
//! * [`telemetry`] — the cycle-domain metrics bridge into
//!   [`esca_telemetry`] (per-FIFO occupancy, stall causes, match-group
//!   size histograms);
//! * [`analytic`] — a closed-form cycle model cross-validated against the
//!   simulator;
//! * [`system`] — the end-to-end deployment pipeline (ESCA + host);
//! * [`dse`] — design-space exploration with Pareto filtering.
//!
//! **Golden equivalence.** For every input, [`accelerator::Esca::run_layer`]
//! produces output **bit-identical** to the integer golden reference
//! [`esca_sscn::quant::submanifold_conv3d_q`]; this is enforced by unit,
//! integration and property tests.
//!
//! # Example
//!
//! ```
//! use esca::{accelerator::Esca, config::EscaConfig};
//! use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
//! use esca_sscn::weights::ConvWeights;
//! use esca_tensor::{Coord3, Extent3, SparseTensor};
//!
//! // Quantize a small Sub-Conv layer and run it through the accelerator.
//! let w = ConvWeights::seeded(3, 1, 16, 7);
//! let qw = QuantizedWeights::auto(&w, 8, 10)?;
//! let mut input = SparseTensor::<f32>::new(Extent3::cube(16), 1);
//! input.insert(Coord3::new(3, 4, 5), &[0.5])?;
//! input.insert(Coord3::new(3, 4, 6), &[-0.25])?;
//! let qin = quantize_tensor(&input, qw.quant().act);
//!
//! let esca = Esca::new(EscaConfig::default())?;
//! let run = esca.run_layer(&qin, &qw, false)?;
//! assert!(run.output.same_active_set(&qin));
//! println!("layer took {} cycles", run.stats.total_cycles());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accelerator;
pub mod admission;
pub mod analytic;
pub mod area;
pub mod buffers;
pub mod compute;
pub mod config;
pub mod dse;
pub mod encode;
pub mod error;
pub mod power;
pub mod resilience;
pub mod sdmu;
pub mod stats;
pub mod streaming;
pub mod system;
pub mod telemetry;
pub mod trace;
pub mod zero_removing;

pub use accelerator::{Esca, LayerRun, NetworkRun};
pub use admission::{
    AdmissionConfig, AdmissionRecord, AdmissionVerdict, Arrival, IngestQueue, SloTarget,
    TenantQuota,
};
pub use config::EscaConfig;
pub use error::EscaError;
pub use resilience::{
    FaultClass, FaultConfig, FaultRates, FrameOutcome, FrameReport, ResilientReport,
};
pub use stats::CycleStats;
pub use telemetry::LayerTelemetry;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EscaError>;
