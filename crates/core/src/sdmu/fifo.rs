//! The FIFO group: K² identical match FIFOs, one per kernel column
//! (§III-C: "The FIFO group consists of K² identical FIFOs, and each FIFO
//! stores the matches belonging to one column").

use super::MatchEntry;
use std::collections::VecDeque;

/// One bounded match FIFO.
#[derive(Debug, Clone, Default)]
pub struct MatchFifo {
    queue: VecDeque<MatchEntry>,
    depth: usize,
    pushes: u64,
    peak: usize,
}

impl MatchFifo {
    /// Creates a FIFO with the given depth.
    pub fn new(depth: usize) -> Self {
        MatchFifo {
            queue: VecDeque::with_capacity(depth),
            depth,
            pushes: 0,
            peak: 0,
        }
    }

    /// Whether another entry fits.
    #[inline]
    pub fn has_room(&self) -> bool {
        self.queue.len() < self.depth
    }

    /// Current occupancy.
    #[inline]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Configured depth — the number of entry slots the fault model's
    /// per-entry parity protects (see [`crate::resilience`]).
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether the FIFO is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Pushes an entry.
    ///
    /// # Panics
    ///
    /// Panics when full — callers must check [`MatchFifo::has_room`]
    /// (hardware would never issue the write; a panic here indicates a
    /// simulator bug, not a recoverable condition).
    pub fn push(&mut self, m: MatchEntry) {
        assert!(self.has_room(), "match FIFO overflow (simulator bug)");
        self.queue.push_back(m);
        self.pushes += 1;
        self.peak = self.peak.max(self.queue.len());
    }

    /// The entry at the head, if any.
    #[inline]
    pub fn front(&self) -> Option<&MatchEntry> {
        self.queue.front()
    }

    /// Pops the head entry.
    #[inline]
    pub fn pop(&mut self) -> Option<MatchEntry> {
        self.queue.pop_front()
    }

    /// Lifetime push count.
    #[inline]
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Peak occupancy observed.
    #[inline]
    pub fn peak(&self) -> usize {
        self.peak
    }
}

/// The group of K² FIFOs plus the MUX drain logic.
#[derive(Debug, Clone)]
pub struct FifoGroup {
    fifos: Vec<MatchFifo>,
}

impl FifoGroup {
    /// Creates `columns` FIFOs of the given depth.
    pub fn new(columns: usize, depth: usize) -> Self {
        FifoGroup {
            fifos: (0..columns).map(|_| MatchFifo::new(depth)).collect(),
        }
    }

    /// Number of FIFOs (K²).
    #[inline]
    pub fn columns(&self) -> usize {
        self.fifos.len()
    }

    /// Access one FIFO.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn fifo(&self, col: usize) -> &MatchFifo {
        &self.fifos[col]
    }

    /// Mutable access to one FIFO.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn fifo_mut(&mut self, col: usize) -> &mut MatchFifo {
        &mut self.fifos[col]
    }

    /// The MUX: pops the next match of `group`, consuming columns in
    /// order (the "calculation order" of §III-C, which lines matches up
    /// with the column-ordered weight stream).
    pub fn pop_for_group(&mut self, group: usize) -> Option<MatchEntry> {
        for fifo in &mut self.fifos {
            if let Some(front) = fifo.front() {
                if front.group == group {
                    return fifo.pop();
                }
            }
        }
        None
    }

    /// Whether any FIFO still holds entries of `group`.
    pub fn holds_group(&self, group: usize) -> bool {
        self.fifos
            .iter()
            .any(|f| f.front().map(|m| m.group == group).unwrap_or(false))
    }

    /// Whether the whole group of FIFOs is empty.
    pub fn is_empty(&self) -> bool {
        self.fifos.iter().all(|f| f.is_empty())
    }

    /// Total pushes across the group.
    pub fn total_pushes(&self) -> u64 {
        self.fifos.iter().map(|f| f.pushes()).sum()
    }

    /// Peak occupancy across all FIFOs.
    pub fn peak_occupancy(&self) -> usize {
        self.fifos.iter().map(|f| f.peak()).max().unwrap_or(0)
    }

    /// Current per-FIFO occupancies in column order (the telemetry
    /// per-cycle occupancy sample).
    pub fn occupancies(&self) -> impl Iterator<Item = usize> + '_ {
        self.fifos.iter().map(MatchFifo::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(col: usize, group: usize) -> MatchEntry {
        MatchEntry {
            column: col,
            tap: 0,
            entry: 0,
            group,
        }
    }

    #[test]
    fn fifo_order_and_capacity() {
        let mut f = MatchFifo::new(2);
        assert!(f.has_room() && f.is_empty());
        f.push(entry(0, 0));
        f.push(entry(0, 1));
        assert!(!f.has_room());
        assert_eq!(f.pop().unwrap().group, 0);
        assert_eq!(f.pop().unwrap().group, 1);
        assert!(f.pop().is_none());
        assert_eq!(f.pushes(), 2);
        assert_eq!(f.peak(), 2);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut f = MatchFifo::new(1);
        f.push(entry(0, 0));
        f.push(entry(0, 0));
    }

    #[test]
    fn mux_pops_in_column_order_within_group() {
        let mut g = FifoGroup::new(3, 4);
        g.fifo_mut(2).push(entry(2, 0));
        g.fifo_mut(0).push(entry(0, 0));
        g.fifo_mut(0).push(entry(0, 1));
        // Group 0: column 0 first, then column 2.
        assert_eq!(g.pop_for_group(0).unwrap().column, 0);
        assert!(g.holds_group(0));
        assert_eq!(g.pop_for_group(0).unwrap().column, 2);
        assert!(!g.holds_group(0));
        // Group 1 remains.
        assert_eq!(g.pop_for_group(1).unwrap().group, 1);
        assert!(g.is_empty());
    }

    #[test]
    fn mux_does_not_pop_future_groups() {
        let mut g = FifoGroup::new(2, 4);
        g.fifo_mut(0).push(entry(0, 5));
        assert!(g.pop_for_group(4).is_none());
        assert!(g.holds_group(5));
    }

    #[test]
    fn group_stats() {
        let mut g = FifoGroup::new(2, 4);
        g.fifo_mut(0).push(entry(0, 0));
        g.fifo_mut(1).push(entry(1, 0));
        g.fifo_mut(1).push(entry(1, 0));
        assert_eq!(g.total_pushes(), 3);
        assert_eq!(g.peak_occupancy(), 2);
        assert_eq!(g.columns(), 2);
    }
}
