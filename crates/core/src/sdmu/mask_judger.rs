//! The mask judger (§III-C, Fig. 6): the SDMU stage that reads the K²
//! column mask bits of the incoming z-slice and judges whether the
//! current sparse receptive field (SRF) is *active* — i.e. whether its
//! centre mask bit is set, which is the submanifold condition for
//! performing a convolution at this site.
//!
//! The judger also exposes the slice bits to the state-index generator
//! (they are the `mask_in` inputs of the per-column accumulators), so one
//! mask-buffer read per cycle feeds both consumers — matching the paper's
//! single "read masks" step.

use esca_tensor::{Coord3, KernelOffsets, OccupancyMask};

/// One judged SRF slice: the K² incoming/outgoing mask bits plus the
/// centre verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JudgedSlice {
    /// Per column: (bit entering the window at z + r, bit leaving past
    /// z − r − 1) — exactly the state-index generator's step inputs.
    pub column_bits: Vec<(bool, bool)>,
    /// Whether the SRF centre is active (the judge-state verdict).
    pub centre_active: bool,
}

/// The mask judger: stateless combinational logic over the mask buffer,
/// parameterized by the kernel geometry.
#[derive(Debug, Clone)]
pub struct MaskJudger {
    offsets: KernelOffsets,
}

impl MaskJudger {
    /// Creates a judger for kernel size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is even or zero.
    pub fn new(k: u32) -> Self {
        MaskJudger {
            offsets: KernelOffsets::new(k),
        }
    }

    /// Columns examined per cycle (K²) — the decoder parallelism.
    pub fn columns(&self) -> usize {
        self.offsets.columns()
    }

    /// Judges the SRF centred at `centre`: reads the K² incoming bits at
    /// the window trailing edge and the K² outgoing bits past the leading
    /// edge, plus the centre bit. Out-of-grid reads are 0 (the zero halo).
    pub fn judge(&self, mask: &OccupancyMask, centre: Coord3) -> JudgedSlice {
        let r = self.offsets.radius();
        let column_bits = (0..self.offsets.columns())
            .map(|col| {
                let (dx, dy) = self.offsets.column_offset(col);
                let m_in =
                    mask.get_or_empty(Coord3::new(centre.x + dx, centre.y + dy, centre.z + r));
                let m_out =
                    mask.get_or_empty(Coord3::new(centre.x + dx, centre.y + dy, centre.z - r - 1));
                (m_in, m_out)
            })
            .collect();
        JudgedSlice {
            column_bits,
            centre_active: mask.get_or_empty(centre),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esca_tensor::Extent3;

    fn mask_with(coords: &[(i32, i32, i32)]) -> OccupancyMask {
        let mut m = OccupancyMask::new(Extent3::cube(8));
        for &(x, y, z) in coords {
            m.set(Coord3::new(x, y, z), true).unwrap();
        }
        m
    }

    #[test]
    fn centre_verdict_follows_the_mask() {
        let m = mask_with(&[(3, 3, 3)]);
        let j = MaskJudger::new(3);
        assert!(j.judge(&m, Coord3::new(3, 3, 3)).centre_active);
        assert!(!j.judge(&m, Coord3::new(3, 3, 4)).centre_active);
        assert_eq!(j.columns(), 9);
    }

    #[test]
    fn incoming_bit_sees_the_trailing_edge() {
        // Neighbor at (3, 3, 4): when the window centre is at z = 3, the
        // trailing edge z + 1 = 4 reads it through the centre column.
        let m = mask_with(&[(3, 3, 4)]);
        let j = MaskJudger::new(3);
        let s = j.judge(&m, Coord3::new(3, 3, 3));
        let centre_col = 4; // (dx, dy) = (0, 0) for K = 3
        assert!(s.column_bits[centre_col].0);
        assert!(!s.column_bits[centre_col].1);
    }

    #[test]
    fn outgoing_bit_sees_past_the_leading_edge() {
        // Entry at z = 1 leaves the window when the centre reaches z = 3
        // (leading edge covers z − 1 = 2; z = 1 is one behind).
        let m = mask_with(&[(3, 3, 1)]);
        let j = MaskJudger::new(3);
        let s = j.judge(&m, Coord3::new(3, 3, 3));
        assert!(s.column_bits[4].1);
        assert!(!s.column_bits[4].0);
    }

    #[test]
    fn halo_reads_are_zero() {
        let m = mask_with(&[]);
        let j = MaskJudger::new(3);
        let s = j.judge(&m, Coord3::new(0, 0, 0));
        assert!(!s.centre_active);
        assert!(s.column_bits.iter().all(|&(a, b)| !a && !b));
    }

    #[test]
    fn off_centre_columns_map_to_their_lines() {
        let m = mask_with(&[(2, 4, 4)]); // dx = -1, dy = +1 from centre (3,3,3)
        let j = MaskJudger::new(3);
        let s = j.judge(&m, Coord3::new(3, 3, 3));
        let col = KernelOffsets::new(3)
            .column_index(Coord3::new(-1, 1, 0))
            .unwrap();
        assert!(s.column_bits[col].0);
        // Every other column is silent.
        for (i, &(a, b)) in s.column_bits.iter().enumerate() {
            if i != col {
                assert!(!a && !b, "column {i} spuriously active");
            }
        }
    }

    #[test]
    fn k5_judger_has_25_columns() {
        let j = MaskJudger::new(5);
        assert_eq!(j.columns(), 25);
        let m = mask_with(&[(3, 3, 5)]); // within radius-2 trailing edge of z=3
        let s = j.judge(&m, Coord3::new(3, 3, 3));
        assert!(s.column_bits[12].0); // centre column of a 5×5 cross-section
    }
}
