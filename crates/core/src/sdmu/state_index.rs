//! The state-index generator (§III-C, Fig. 6): per kernel column, the
//! running accumulator `A` (nonzero activations seen so far along the
//! column line, up to the sliding window's trailing edge) and the window
//! count `B`. The address generator then emits the fragment `(A−B, A]`.
//!
//! The hardware maintains `A` with a simple adder fed by the incoming mask
//! bits ("Acc" in Fig. 6); this model does the same, and the SDMU
//! cross-checks it against the line-CSR prefix counts — hardware
//! addressing and functional addressing must agree bit-for-bit.

use serde::{Deserialize, Serialize};

/// Per-column running state for one (x, y) scan line.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnState {
    /// Running count of nonzero activations with z ≤ window trailing edge
    /// — the paper's index `A` (line-local).
    a: usize,
    /// Count of nonzero activations with z < window leading edge, used to
    /// derive `B = a − a_lead`.
    a_lead: usize,
}

impl ColumnState {
    /// Resets the state for a new scan line.
    pub fn reset(&mut self) {
        *self = ColumnState::default();
    }

    /// Advances the window by one z step: `mask_in` is the mask bit
    /// entering at the trailing edge (z + K/2), `mask_out` the bit leaving
    /// past the leading edge (z − K/2 − 1).
    pub fn step(&mut self, mask_in: bool, mask_out: bool) {
        if mask_in {
            self.a += 1;
        }
        if mask_out {
            self.a_lead += 1;
        }
    }

    /// Preloads the accumulators at a line start: `a` entries precede the
    /// window trailing edge, `a_lead` precede the leading edge. The
    /// hardware performs this during the pipeline-fill cycles by streaming
    /// the lead-in mask bits through the adder.
    pub fn preload(&mut self, a: usize, a_lead: usize) {
        debug_assert!(a >= a_lead, "trailing count cannot lag leading count");
        self.a = a;
        self.a_lead = a_lead;
    }

    /// The paper's index `A`.
    #[inline]
    pub fn a(&self) -> usize {
        self.a
    }

    /// The paper's index `B` (window population), derived as `A − A_lead`.
    #[inline]
    pub fn b(&self) -> usize {
        self.a - self.a_lead
    }

    /// The address fragment `(A−B, A]` as a half-open range `[A−B, A)`
    /// into the column line's bank.
    #[inline]
    pub fn fragment(&self) -> std::ops::Range<usize> {
        (self.a - self.b())..self.a
    }
}

/// The state-index generator: one [`ColumnState`] per kernel column.
#[derive(Debug, Clone)]
pub struct StateIndexGen {
    columns: Vec<ColumnState>,
}

impl StateIndexGen {
    /// Creates a generator for `columns` (K²) columns.
    pub fn new(columns: usize) -> Self {
        StateIndexGen {
            columns: vec![ColumnState::default(); columns],
        }
    }

    /// Resets all columns (new scan line).
    pub fn reset(&mut self) {
        for c in &mut self.columns {
            c.reset();
        }
    }

    /// Number of columns.
    #[inline]
    pub fn columns(&self) -> usize {
        self.columns.len()
    }

    /// Advances every column by one z step with its (in, out) mask bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != columns()`.
    pub fn step(&mut self, bits: &[(bool, bool)]) {
        assert_eq!(bits.len(), self.columns.len(), "one bit pair per column");
        for (c, &(m_in, m_out)) in self.columns.iter_mut().zip(bits) {
            c.step(m_in, m_out);
        }
    }

    /// The state of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn column(&self, col: usize) -> &ColumnState {
        &self.columns[col]
    }

    /// Preloads one column's accumulators (see [`ColumnState::preload`]).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn preload(&mut self, col: usize, a: usize, a_lead: usize) {
        self.columns[col].preload(a, a_lead);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_the_papers_worked_semantics() {
        // Column occupancy along z: 0 1 1 0 1 (K = 3 window).
        let occ = [false, true, true, false, true];
        let mask = |z: i32| -> bool { (0..5).contains(&z) && occ[z as usize] };
        let mut cs = ColumnState::default();
        // Slide the window centre over z = 0..5; window is [z-1, z+1].
        let mut expected_a = 0;
        for z in 0..5i32 {
            let m_in = mask(z + 1);
            let m_out = mask(z - 2);
            cs.step(m_in, m_out);
            if m_in {
                expected_a += 1;
            }
            assert_eq!(cs.a(), expected_a);
            // Brute-force B: occupancy within [z-1, z+1].
            let b = (z - 1..=z + 1).filter(|&q| mask(q)).count();
            assert_eq!(cs.b(), b, "at z={z}");
            assert_eq!(cs.fragment().len(), b);
            assert_eq!(cs.fragment().end, cs.a());
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut cs = ColumnState::default();
        cs.step(true, false);
        assert_eq!(cs.a(), 1);
        cs.reset();
        assert_eq!(cs.a(), 0);
        assert_eq!(cs.b(), 0);
    }

    #[test]
    fn generator_steps_all_columns() {
        let mut g = StateIndexGen::new(3);
        g.step(&[(true, false), (false, false), (true, false)]);
        g.step(&[(false, true), (true, false), (false, false)]);
        assert_eq!(g.column(0).a(), 1);
        assert_eq!(g.column(0).b(), 0); // the one entry left the window
        assert_eq!(g.column(1).b(), 1);
        assert_eq!(g.column(2).a(), 1);
        g.reset();
        assert_eq!(g.column(1).a(), 0);
    }

    #[test]
    #[should_panic(expected = "one bit pair per column")]
    fn wrong_width_panics() {
        let mut g = StateIndexGen::new(2);
        g.step(&[(false, false)]);
    }
}
