//! The Sparse Data Matching Unit (§III-C, Fig. 6–7).
//!
//! For each active tile the SDMU traverses the tile's sites line by line
//! (z fastest), and for every site executes the paper's four matching
//! steps:
//!
//! 1. **Read masks** — the K² column mask bits of the new z-slice;
//! 2. **Judge state** — if the centre mask is 0, the SRF is skipped;
//! 3. **Generate state index** — per column, the `(A, B)` pair from the
//!    running accumulator;
//! 4. **Fetch activations** — read the address fragments `(A−B, A]` from
//!    the activation buffer into the K² match FIFOs.
//!
//! The MUX then drains the FIFOs in column order, one match per cycle,
//! toward the computing core. [`TileSdmu`] exposes exactly these steps to
//! the main controller's cycle loop.

pub mod fifo;
pub mod mask_judger;
pub mod state_index;

use crate::encode::EncodedFeatureMap;
use crate::trace::{PipelineTrace, Stage};
use esca_tensor::{Coord3, Extent3, KernelOffsets, TileInfo, TileShape};
use fifo::FifoGroup;
use mask_judger::MaskJudger;
use state_index::StateIndexGen;
use std::collections::VecDeque;
use std::ops::Range;

/// One match: an activation-buffer entry paired with its kernel tap,
/// tagged with the match group (active centre) it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchEntry {
    /// Kernel column (0..K²) — which FIFO carried it.
    pub column: usize,
    /// Kernel tap index (positional weight correspondence).
    pub tap: usize,
    /// Global activation-buffer entry index (into the line CSR).
    pub entry: usize,
    /// Match-group ordinal (centre id within the layer run).
    pub group: usize,
}

/// Descriptor of a match group: one active centre and its match count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchGroupDesc {
    /// Match-group ordinal.
    pub group: usize,
    /// The active centre site.
    pub centre: Coord3,
    /// Total matches the group contains (≥ 1: the centre matches itself).
    pub total_matches: usize,
}

/// Outcome of one scan-stage cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanOutcome {
    /// Pipeline fill at a line start consumed the cycle.
    LineFill,
    /// A site was scanned; `Some` when its centre was active.
    Scanned(Option<MatchGroupDesc>),
    /// The tile is fully scanned.
    Done,
}

/// Outcome of one fetch-stage cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// No job pending.
    Idle,
    /// Pushed `pushes` entries into the FIFO group this cycle.
    Progress {
        /// Entries pushed (≤ K², one per column bank).
        pushes: u32,
    },
    /// A job is pending but every remaining column's FIFO is full.
    Stalled,
}

/// A pending fetch job: the address fragments of one active SRF.
#[derive(Debug, Clone)]
struct FetchJob {
    group: usize,
    centre: Coord3,
    /// Per column: the remaining global entry range to push.
    remaining: Vec<Range<usize>>,
}

/// The per-tile SDMU state machine.
#[derive(Debug)]
pub struct TileSdmu<'a> {
    enc: &'a EncodedFeatureMap,
    offsets: KernelOffsets,
    judger: MaskJudger,
    /// Scan order: all sites of the tile, (x, y) line-major, z fastest.
    sites: Vec<Coord3>,
    scan_pos: usize,
    fill_remaining: u64,
    pipeline_fill: u64,
    line_start: bool,
    state_index: StateIndexGen,
    jobs: VecDeque<FetchJob>,
    /// The K² match FIFOs.
    pub fifos: FifoGroup,
    next_group: usize,
    // counters
    mask_bits_read: u64,
    act_reads: u64,
    scanned: u64,
}

impl<'a> TileSdmu<'a> {
    /// Creates the SDMU state machine for one active tile.
    ///
    /// `first_group` is the match-group ordinal to assign to the tile's
    /// first active centre (groups number consecutively across tiles).
    #[allow(clippy::too_many_arguments)] // mirrors the hardware unit's ports
    pub fn new(
        enc: &'a EncodedFeatureMap,
        tile: &TileInfo,
        shape: TileShape,
        extent: Extent3,
        kernel: u32,
        fifo_depth: usize,
        pipeline_fill: u64,
        first_group: usize,
    ) -> Self {
        let offsets = KernelOffsets::new(kernel);
        let hi = tile.max_corner(shape, extent);
        let mut sites =
            Vec::with_capacity(((hi.x - tile.origin.x + 1) * (hi.y - tile.origin.y + 1)) as usize);
        for x in tile.origin.x..=hi.x {
            for y in tile.origin.y..=hi.y {
                for z in tile.origin.z..=hi.z {
                    sites.push(Coord3::new(x, y, z));
                }
            }
        }
        let columns = offsets.columns();
        TileSdmu {
            enc,
            offsets,
            judger: MaskJudger::new(kernel),
            sites,
            scan_pos: 0,
            fill_remaining: 0,
            pipeline_fill,
            line_start: true,
            state_index: StateIndexGen::new(columns),
            jobs: VecDeque::new(),
            fifos: FifoGroup::new(columns, fifo_depth),
            next_group: first_group,
            mask_bits_read: 0,
            act_reads: 0,
            scanned: 0,
        }
    }

    /// Whether every site of the tile has been scanned.
    pub fn scan_done(&self) -> bool {
        self.scan_pos >= self.sites.len()
    }

    /// Pending fetch jobs.
    pub fn jobs_pending(&self) -> usize {
        self.jobs.len()
    }

    /// Index-mask bits read so far.
    pub fn mask_bits_read(&self) -> u64 {
        self.mask_bits_read
    }

    /// Activation-buffer entry reads so far.
    pub fn act_reads(&self) -> u64 {
        self.act_reads
    }

    /// Sites scanned so far.
    pub fn scanned_sites(&self) -> u64 {
        self.scanned
    }

    /// The next group ordinal that would be assigned.
    pub fn next_group(&self) -> usize {
        self.next_group
    }

    /// One scan-stage cycle: read masks, judge, generate state index, and
    /// (for active centres) enqueue the fetch job.
    pub fn scan_step(&mut self, cycle: u64, trace: &mut PipelineTrace) -> ScanOutcome {
        if self.scan_done() {
            return ScanOutcome::Done;
        }
        let centre = self.sites[self.scan_pos];
        let r = self.offsets.radius();

        // New (x, y) line: preload the column accumulators (the hardware
        // does this during the pipeline-fill cycles).
        if self.line_start {
            if self.fill_remaining == 0 && self.pipeline_fill > 0 {
                self.fill_remaining = self.pipeline_fill;
                self.preload_line(centre);
                // fall through to consume the first fill cycle below
            } else if self.pipeline_fill == 0 {
                self.preload_line(centre);
                self.line_start = false;
            }
            if self.fill_remaining > 0 {
                self.fill_remaining -= 1;
                trace.record(
                    cycle,
                    Stage::ReadMasks,
                    format!("fill line ({}, {})", centre.x, centre.y),
                );
                if self.fill_remaining == 0 {
                    self.line_start = false;
                }
                return ScanOutcome::LineFill;
            }
        }

        // Read masks + judge: one new z-slice of K² bits enters the SRF
        // window, and the centre verdict decides whether to match.
        let slice = self.judger.judge(self.enc.mask(), centre);
        self.state_index.step(&slice.column_bits);
        self.mask_bits_read += self.offsets.columns() as u64;
        self.scanned += 1;
        trace.record(cycle, Stage::ReadMasks, format!("srf {centre}"));
        trace.record(cycle, Stage::JudgeState, format!("srf {centre}"));

        let centre_active = slice.centre_active;
        let outcome = if centre_active {
            trace.record(cycle, Stage::GenStateIndex, format!("srf {centre}"));
            let mut remaining = Vec::with_capacity(self.offsets.columns());
            let mut total = 0usize;
            for col in 0..self.offsets.columns() {
                let (dx, dy) = self.offsets.column_offset(col);
                let w = self.enc.lines().window(
                    centre.x + dx,
                    centre.y + dy,
                    centre.z - r,
                    centre.z + r + 1,
                );
                // Hardware/functional cross-check: the running (A, B)
                // accumulator addresses exactly the CSR window.
                debug_assert_eq!(
                    self.state_index.column(col).b(),
                    w.len(),
                    "state index B disagrees with CSR window at {centre} col {col}"
                );
                debug_assert_eq!(
                    self.state_index.column(col).a(),
                    self.enc
                        .lines()
                        .prefix_count(centre.x + dx, centre.y + dy, centre.z + r),
                    "state index A disagrees with CSR prefix at {centre} col {col}"
                );
                total += w.len();
                remaining.push(w.global_range());
            }
            let desc = MatchGroupDesc {
                group: self.next_group,
                centre,
                total_matches: total,
            };
            self.jobs.push_back(FetchJob {
                group: self.next_group,
                centre,
                remaining,
            });
            self.next_group += 1;
            ScanOutcome::Scanned(Some(desc))
        } else {
            ScanOutcome::Scanned(None)
        };

        // Advance; detect line change.
        self.scan_pos += 1;
        if let Some(next) = self.sites.get(self.scan_pos) {
            if next.x != centre.x || next.y != centre.y {
                self.line_start = true;
                self.state_index.reset();
            }
        }
        outcome
    }

    /// Preloads the column accumulators for the line containing `centre`
    /// (its first site), so the windows are primed when scanning starts.
    fn preload_line(&mut self, first: Coord3) {
        let r = self.offsets.radius();
        self.state_index.reset();
        for col in 0..self.offsets.columns() {
            let (dx, dy) = self.offsets.column_offset(col);
            let (lx, ly) = (first.x + dx, first.y + dy);
            // Before the first step at z = first.z, the accumulators must
            // reflect the window trailing edge at z + r − 1 and leading
            // edge past z − r − 2.
            let a = self.enc.lines().prefix_count(lx, ly, first.z + r - 1);
            let a_lead = self.enc.lines().prefix_count(lx, ly, first.z - r - 2);
            self.state_index.preload(col, a, a_lead);
        }
    }

    /// One fetch-stage cycle: each column bank pushes at most one entry of
    /// the front job into its FIFO.
    pub fn fetch_step(&mut self, cycle: u64, trace: &mut PipelineTrace) -> FetchOutcome {
        let Some(job) = self.jobs.front_mut() else {
            return FetchOutcome::Idle;
        };
        let mut pushes = 0u32;
        let mut blocked = false;
        for col in 0..self.fifos.columns() {
            let range = &mut job.remaining[col];
            if range.start >= range.end {
                continue;
            }
            if !self.fifos.fifo(col).has_room() {
                blocked = true;
                continue;
            }
            let entry = range.start;
            range.start += 1;
            let dz = self.enc.lines().zs()[entry] - job.centre.z;
            let (dx, dy) = self.offsets.column_offset(col);
            let tap = self
                .offsets
                .tap_index(Coord3::new(dx, dy, dz))
                .expect("window entries lie within the kernel support");
            self.fifos.fifo_mut(col).push(MatchEntry {
                column: col,
                tap,
                entry,
                group: job.group,
            });
            self.act_reads += 1;
            pushes += 1;
        }
        if pushes > 0 {
            trace.record(
                cycle,
                Stage::FetchActivations,
                format!("group {}", job.group),
            );
        }
        if job.remaining.iter().all(|r| r.start >= r.end) {
            self.jobs.pop_front();
            return FetchOutcome::Progress { pushes };
        }
        if pushes == 0 && blocked {
            return FetchOutcome::Stalled;
        }
        FetchOutcome::Progress { pushes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esca_tensor::{SparseTensor, Q16};

    fn encoded(coords: &[(i32, i32, i32)]) -> EncodedFeatureMap {
        let mut t = SparseTensor::<Q16>::new(Extent3::cube(8), 1);
        for (i, &(x, y, z)) in coords.iter().enumerate() {
            t.insert(Coord3::new(x, y, z), &[Q16(i as i16 + 1)])
                .unwrap();
        }
        t.canonicalize();
        EncodedFeatureMap::encode(&t, TileShape::cube(4)).unwrap()
    }

    fn run_tile(
        enc: &EncodedFeatureMap,
        tile_idx: usize,
    ) -> (Vec<MatchGroupDesc>, Vec<MatchEntry>) {
        let report = enc.tiles().clone();
        let info = report
            .active()
            .iter()
            .find(|t| t.index == tile_idx)
            .copied()
            .expect("tile is active");
        let grid = report.grid();
        let mut sdmu = TileSdmu::new(enc, &info, grid.shape(), grid.extent(), 3, 64, 2, 0);
        let mut trace = PipelineTrace::new(false);
        let mut descs = Vec::new();
        let mut cycle = 0u64;
        // Scan everything first, then drain fetches (FIFOs are deep here).
        loop {
            match sdmu.scan_step(cycle, &mut trace) {
                ScanOutcome::Done => break,
                ScanOutcome::Scanned(Some(d)) => descs.push(d),
                _ => {}
            }
            // Interleave fetching so deep jobs drain.
            let _ = sdmu.fetch_step(cycle, &mut trace);
            cycle += 1;
        }
        while sdmu.jobs_pending() > 0 {
            let _ = sdmu.fetch_step(cycle, &mut trace);
            cycle += 1;
        }
        let mut matches = Vec::new();
        for d in &descs {
            while let Some(m) = sdmu.fifos.pop_for_group(d.group) {
                matches.push(m);
            }
        }
        assert!(sdmu.fifos.is_empty());
        (descs, matches)
    }

    #[test]
    fn isolated_centre_matches_itself_only() {
        let enc = encoded(&[(1, 1, 1)]);
        let tile_idx = enc.tiles().active()[0].index;
        let (descs, matches) = run_tile(&enc, tile_idx);
        assert_eq!(descs.len(), 1);
        assert_eq!(descs[0].total_matches, 1);
        assert_eq!(matches.len(), 1);
        // Centre column of a 3³ kernel is column 4, centre tap 13.
        assert_eq!(matches[0].column, 4);
        assert_eq!(matches[0].tap, 13);
    }

    #[test]
    fn adjacent_pair_produces_two_groups_of_two() {
        let enc = encoded(&[(1, 1, 1), (1, 1, 2)]);
        let tile_idx = enc.tiles().active()[0].index;
        let (descs, matches) = run_tile(&enc, tile_idx);
        assert_eq!(descs.len(), 2);
        assert!(descs.iter().all(|d| d.total_matches == 2));
        assert_eq!(matches.len(), 4);
        // Every match's tap corresponds to the actual geometric offset.
        let offsets = KernelOffsets::new(3);
        for m in &matches {
            let d = &descs[m.group];
            let q = Coord3::new(1, 1, 1 + m.entry as i32); // entries: z=1, z=2 in line order
            let off = q - d.centre;
            assert_eq!(offsets.tap_index(off), Some(m.tap));
        }
    }

    #[test]
    fn matches_equal_golden_match_group() {
        // Random-ish cluster crossing a tile border (halo case).
        let coords = [(3, 3, 3), (4, 3, 3), (3, 4, 3), (3, 3, 4), (2, 3, 3)];
        let enc = encoded(&coords);
        let mut total_matches = 0;
        let mut total_groups = 0;
        for info in enc.tiles().active() {
            let (descs, matches) = run_tile(&enc, info.index);
            total_groups += descs.len();
            total_matches += matches.len();
        }
        assert_eq!(total_groups, coords.len());
        // Golden count via the reference op counter.
        let mut t = SparseTensor::<f32>::new(Extent3::cube(8), 1);
        for &(x, y, z) in &coords {
            t.insert(Coord3::new(x, y, z), &[1.0]).unwrap();
        }
        let golden = esca_sscn::ops::count_matches(&t, 3);
        assert_eq!(total_matches as u64, golden);
    }

    #[test]
    fn fifo_backpressure_stalls_fetch() {
        // A very dense line with tiny FIFOs must report a stall.
        let coords: Vec<(i32, i32, i32)> = (0..4).map(|z| (1, 1, z)).collect();
        let mut t = SparseTensor::<Q16>::new(Extent3::cube(8), 1);
        for &(x, y, z) in &coords {
            t.insert(Coord3::new(x, y, z), &[Q16(1)]).unwrap();
        }
        t.canonicalize();
        let enc = EncodedFeatureMap::encode(&t, TileShape::cube(4)).unwrap();
        let info = enc.tiles().active()[0];
        let grid = enc.tiles().grid();
        let mut sdmu = TileSdmu::new(&enc, &info, grid.shape(), grid.extent(), 3, 1, 0, 0);
        let mut trace = PipelineTrace::new(false);
        let mut stalled = false;
        let mut cycle = 0;
        while !sdmu.scan_done() {
            let _ = sdmu.scan_step(cycle, &mut trace);
            cycle += 1;
        }
        // Drain fetch without ever popping: must hit backpressure.
        for _ in 0..100 {
            if sdmu.fetch_step(cycle, &mut trace) == FetchOutcome::Stalled {
                stalled = true;
                break;
            }
            cycle += 1;
        }
        assert!(stalled, "expected FIFO backpressure with depth-1 FIFOs");
    }

    #[test]
    fn scan_counts_sites_and_mask_bits() {
        let enc = encoded(&[(0, 0, 0)]);
        let info = enc.tiles().active()[0];
        let grid = enc.tiles().grid();
        let mut sdmu = TileSdmu::new(&enc, &info, grid.shape(), grid.extent(), 3, 8, 2, 0);
        let mut trace = PipelineTrace::new(false);
        let mut cycle = 0;
        loop {
            if sdmu.scan_step(cycle, &mut trace) == ScanOutcome::Done {
                break;
            }
            let _ = sdmu.fetch_step(cycle, &mut trace);
            cycle += 1;
        }
        // 4³ tile = 64 sites scanned, 9 bits per site.
        assert_eq!(sdmu.scanned_sites(), 64);
        assert_eq!(sdmu.mask_bits_read(), 64 * 9);
    }
}
