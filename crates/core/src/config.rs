//! Accelerator configuration.
//!
//! The defaults reproduce the paper's design point: 8³ tiles, 3×3×3
//! kernels (SDMU parallelism K² = 9), a 16×16 computing array (256 DSP
//! MACs), 270 MHz on a ZCU102, and buffer sizes consistent with the
//! Table II BRAM budget. The DRAM-path parameters model the PL→DDR4 HP
//! ports of the ZCU102 and are the calibrated part of the timing model
//! (see DESIGN.md §6).

use crate::error::EscaError;
use crate::Result;
use esca_tensor::TileShape;
use serde::{Deserialize, Serialize};

/// Full configuration of an ESCA instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EscaConfig {
    /// Tile shape for the zero removing strategy (paper design point: 8³).
    pub tile: TileShape,
    /// Sub-Conv kernel size K (paper: 3; SDMU parallelism is K²).
    pub kernel: u32,
    /// Input-channel parallelism of each computing unit (paper: 16).
    pub ic_parallel: usize,
    /// Output-channel parallelism — number of computing units (paper: 16).
    pub oc_parallel: usize,
    /// Depth of each match FIFO in the FIFO group.
    pub fifo_depth: usize,
    /// Clock frequency in MHz (paper: 270).
    pub clock_mhz: f64,
    /// Mask buffer capacity in bytes.
    pub mask_buffer_bytes: usize,
    /// Activation buffer capacity in bytes.
    pub act_buffer_bytes: usize,
    /// Weight buffer capacity in bytes.
    pub weight_buffer_bytes: usize,
    /// Output buffer capacity in bytes.
    pub out_buffer_bytes: usize,
    /// Sustained DRAM bandwidth of the PL HP port, bytes per PL cycle.
    /// The default, 2 B/cycle ≈ 0.54 GB/s at 270 MHz, is the effective
    /// figure for the short, scattered per-tile bursts this dataflow
    /// issues (HP ports only approach their multi-GB/s peak on long
    /// sequential bursts).
    pub dram_bytes_per_cycle: f64,
    /// Fraction of activation/output DRAM traffic overlapped with compute
    /// (double-buffered tiles); the remainder stalls the pipeline.
    pub dram_overlap: f64,
    /// Whether the weight load overlaps the previous layer's compute.
    pub weight_load_overlap: bool,
    /// **Matching-resident** mode: the layer's matching metadata (the
    /// SDMU's rulebook / site maps) is already resident from an earlier
    /// pass over the same geometry — e.g. a whole-network geometry-plan
    /// hit on a static-scene stream — so the scan/fetch/match pipeline
    /// stages charge zero cycles and only the computing-array stage runs.
    /// Mirrors [`EscaConfig::weight_load_overlap`] for the weight path.
    /// Deserialization defaults to `false`, keeping older configs valid.
    #[serde(default)]
    pub matching_resident: bool,
    /// Fixed per-tile overhead (descriptor fetch, address setup), cycles.
    pub per_tile_overhead_cycles: u64,
    /// Fixed per-layer overhead (host handshake, descriptor setup and
    /// synchronization through the PS — ≈74 µs at the default clock,
    /// typical for an interrupt-driven PYNQ-style flow).
    pub per_layer_overhead_cycles: u64,
    /// Pipeline fill cycles per (x, y) scan line inside a tile.
    pub pipeline_fill_cycles: u64,
    /// Record a pipeline event trace while running (costly; off for
    /// benches, on for the Fig. 7(b) example).
    pub record_trace: bool,
}

impl Default for EscaConfig {
    fn default() -> Self {
        EscaConfig {
            tile: TileShape::cube(8),
            kernel: 3,
            ic_parallel: 16,
            oc_parallel: 16,
            fifo_depth: 16,
            clock_mhz: 270.0,
            // Sized in whole BRAM36 blocks (4608 bytes each): 22 + 144 +
            // 63 + 132 = 361 blocks; with the 9 half-BRAM match FIFOs the
            // total is Table II's 365.5.
            mask_buffer_bytes: 22 * 4608,
            act_buffer_bytes: 144 * 4608,
            weight_buffer_bytes: 63 * 4608,
            out_buffer_bytes: 132 * 4608,
            dram_bytes_per_cycle: 1.1,
            dram_overlap: 0.35,
            weight_load_overlap: false,
            matching_resident: false,
            per_tile_overhead_cycles: 24,
            per_layer_overhead_cycles: 20_000,
            pipeline_fill_cycles: 2,
            record_trace: false,
        }
    }
}

impl EscaConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EscaError::Config`] for zero/even kernel, zero
    /// parallelism, zero clock, empty buffers, or out-of-range overlap.
    pub fn validate(&self) -> Result<()> {
        if self.kernel == 0 || self.kernel.is_multiple_of(2) {
            return Err(EscaError::Config {
                reason: format!("kernel must be odd and nonzero, got {}", self.kernel),
            });
        }
        if self.ic_parallel == 0 || self.oc_parallel == 0 {
            return Err(EscaError::Config {
                reason: "ic/oc parallelism must be nonzero".into(),
            });
        }
        if self.fifo_depth == 0 {
            return Err(EscaError::Config {
                reason: "fifo depth must be nonzero".into(),
            });
        }
        if self.clock_mhz <= 0.0 {
            return Err(EscaError::Config {
                reason: "clock must be positive".into(),
            });
        }
        if self.dram_bytes_per_cycle <= 0.0 {
            return Err(EscaError::Config {
                reason: "dram bandwidth must be positive".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.dram_overlap) {
            return Err(EscaError::Config {
                reason: "dram_overlap must be within [0, 1]".into(),
            });
        }
        if self.mask_buffer_bytes == 0
            || self.act_buffer_bytes == 0
            || self.weight_buffer_bytes == 0
            || self.out_buffer_bytes == 0
        {
            return Err(EscaError::Config {
                reason: "all buffers must have nonzero capacity".into(),
            });
        }
        Ok(())
    }

    /// SDMU decoder parallelism: the K² kernel columns.
    #[inline]
    pub fn columns(&self) -> usize {
        (self.kernel * self.kernel) as usize
    }

    /// Total MAC lanes in the computing array (Table II's 256 DSPs).
    #[inline]
    pub fn mac_lanes(&self) -> usize {
        self.ic_parallel * self.oc_parallel
    }

    /// Cycles a single match occupies the computing array for a layer with
    /// the given channel counts: `⌈ic/16⌉ × ⌈oc/16⌉` group iterations
    /// (Fig. 8(a)'s IC/OC loops).
    #[inline]
    pub fn match_cycles(&self, in_ch: usize, out_ch: usize) -> u64 {
        (in_ch.div_ceil(self.ic_parallel) * out_ch.div_ceil(self.oc_parallel)) as u64
    }

    /// Seconds per cycle.
    #[inline]
    pub fn cycle_time_s(&self) -> f64 {
        1.0 / (self.clock_mhz * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_papers_design_point() {
        let c = EscaConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.tile, TileShape::cube(8));
        assert_eq!(c.kernel, 3);
        assert_eq!(c.columns(), 9);
        assert_eq!(c.mac_lanes(), 256);
        assert_eq!(c.clock_mhz, 270.0);
    }

    #[test]
    fn match_cycles_groups() {
        let c = EscaConfig::default();
        assert_eq!(c.match_cycles(16, 16), 1);
        assert_eq!(c.match_cycles(1, 16), 1);
        assert_eq!(c.match_cycles(17, 16), 2);
        assert_eq!(c.match_cycles(32, 48), 6);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = EscaConfig::default();
        c.kernel = 4;
        assert!(c.validate().is_err());
        let mut c = EscaConfig::default();
        c.ic_parallel = 0;
        assert!(c.validate().is_err());
        let mut c = EscaConfig::default();
        c.dram_overlap = 1.5;
        assert!(c.validate().is_err());
        let mut c = EscaConfig::default();
        c.act_buffer_bytes = 0;
        assert!(c.validate().is_err());
        let mut c = EscaConfig::default();
        c.clock_mhz = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn cycle_time() {
        let c = EscaConfig::default();
        assert!((c.cycle_time_s() - 1.0 / 270e6).abs() < 1e-18);
    }
}
