//! System-level pipeline: the full accelerated deployment of an SS U-Net
//! on the ZCU102 — Sub-Conv layers on the ESCA fabric, everything else
//! (strided down/upsampling, concatenation, the classification head,
//! per-layer quantize/dequantize marshalling) on the host PS, with a
//! simple host cost model. This composes the paper's per-layer results
//! into a true end-to-end inference latency.

use crate::accelerator::Esca;
use crate::stats::CycleStats;
use crate::Result;
use esca_sscn::engine::{FlatEngine, RulebookCache};
use esca_sscn::gemm::GemmBackendKind;
use esca_sscn::plan::PlanCache;
use esca_sscn::quant::{dequantize_tensor, quantize_tensor, QuantizedWeights};
use esca_sscn::unet::SsUNet;
use esca_telemetry::{MetricsSnapshot, Registry};
use esca_tensor::SparseTensor;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Host (PS-side) cost model: a quad-A53 running NEON-ish scalar code.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostModel {
    /// Sustained host throughput on the sparse ops, GFLOP/s.
    pub gflops: f64,
    /// Per-point marshalling cost (quantize/dequantize/copy), nanoseconds
    /// per feature element.
    pub marshal_ns_per_elem: f64,
}

impl Default for HostModel {
    fn default() -> Self {
        HostModel {
            gflops: 2.0,
            marshal_ns_per_elem: 1.5,
        }
    }
}

/// Result of an end-to-end pipeline run.
#[derive(Debug, Clone)]
pub struct SystemRun {
    /// The network logits.
    pub logits: SparseTensor<f32>,
    /// Aggregate accelerator statistics over all Sub-Conv layers.
    pub accel: CycleStats,
    /// Modelled host compute time (strided convs, concat, head), seconds.
    pub host_compute_s: f64,
    /// Modelled host marshalling time (quantize/dequantize), seconds.
    pub host_marshal_s: f64,
    /// Accelerator time, seconds.
    pub accel_s: f64,
}

impl SystemRun {
    /// End-to-end latency (host and accelerator serialized, as in an
    /// interrupt-driven deployment).
    pub fn end_to_end_s(&self) -> f64 {
        self.accel_s + self.host_compute_s + self.host_marshal_s
    }

    /// Fraction of end-to-end time spent on the accelerator.
    pub fn accel_fraction(&self) -> f64 {
        if self.end_to_end_s() > 0.0 {
            self.accel_s / self.end_to_end_s()
        } else {
            0.0
        }
    }
}

/// Runs a full SS U-Net with Sub-Conv layers offloaded to `esca` (each
/// layer quantized at `act_bits` activation fractional bits) and host
/// layers costed by `host`.
///
/// The float output differs from [`SsUNet::forward`] only by the
/// quantization error of the offloaded layers.
///
/// # Errors
///
/// Propagates accelerator errors (capacity/config) and network errors.
pub fn run_unet(
    net: &SsUNet,
    esca: &Esca,
    host: &HostModel,
    input: &SparseTensor<f32>,
    act_bits: u8,
) -> Result<SystemRun> {
    let mut accel = CycleStats::default();
    let mut marshal_elems = 0u64;
    let mut exec_err: Option<crate::EscaError> = None;
    let logits = net.forward_with(input, |_, _, w, x| {
        let qw = QuantizedWeights::auto(w, act_bits, 12).map_err(|e| {
            esca_sscn::SscnError::InvalidConfig {
                reason: format!("quantization failed: {e}"),
            }
        })?;
        let qin = quantize_tensor(x, qw.quant().act);
        match esca.run_layer(&qin, &qw, true) {
            Ok(run) => {
                accel += &run.stats;
                marshal_elems += (x.nnz() * (w.in_ch() + w.out_ch())) as u64;
                Ok(dequantize_tensor(&run.output, qw.quant().out))
            }
            Err(e) => {
                let msg = e.to_string();
                exec_err = Some(e);
                Err(esca_sscn::SscnError::InvalidConfig { reason: msg })
            }
        }
    });
    let logits = match logits {
        Ok(l) => l,
        Err(net_err) => {
            return Err(exec_err.unwrap_or_else(|| net_err.into()));
        }
    };

    // Host op counts: strided convs (2 ops per (input site, ic, oc)),
    // transpose convs (per target site), the head.
    let cfg = net.config();
    let mut host_flops = 0f64;
    // Downsampling inputs shrink level by level; approximate with the
    // actual active counts by re-deriving them from the input chain would
    // require a second pass, so cost with the finest nnz as upper bound
    // per level (documented conservative choice).
    let mut level_nnz = input.nnz() as f64;
    for l in 0..cfg.levels - 1 {
        let ic = cfg.channels_at(l) as f64;
        let oc = cfg.channels_at(l + 1) as f64;
        host_flops += 2.0 * level_nnz * ic * oc; // downsample
        host_flops += 2.0 * level_nnz * oc * ic; // upsample (same magnitude)
        level_nnz /= 4.0; // empirical shrink of surface-like sets under 2× downsampling
    }
    host_flops += 2.0 * input.nnz() as f64 * cfg.channels_at(0) as f64 * cfg.classes as f64;

    let clock = esca.config().clock_mhz;
    Ok(SystemRun {
        logits,
        accel_s: accel.time_s(clock),
        host_compute_s: host_flops / (host.gflops * 1e9),
        host_marshal_s: marshal_elems as f64 * host.marshal_ns_per_elem * 1e-9,
        accel,
    })
}

/// Result of a host-golden full-U-Net replay ([`run_unet_golden`]).
#[derive(Debug, Clone)]
pub struct GoldenUnetRun {
    /// The network logits — bit-identical to [`SsUNet::forward`] when the
    /// replay ran the scalar reference GEMM tier ([`run_unet_golden`]'s
    /// default), epsilon-bounded under the blocked throughput tier.
    pub logits: SparseTensor<f32>,
    /// Host-domain snapshot of the rulebook cache after the replay
    /// (hits/misses/evictions, resident bytes/entries) plus the engine's
    /// backend-labeled GEMM work counters.
    pub cache_metrics: MetricsSnapshot,
}

/// Runs a full SS U-Net **on the host golden path** with every Sub-Conv
/// layer delegated to the matching-reuse engine
/// ([`SsUNet::forward_engine`]), sharing rulebooks through `cache` across
/// levels, repeated replays and other sessions. Same-level encoder and
/// decoder layers share one rulebook, so even a cold cache sees hits
/// within a single pass; a warm cache (e.g. from an earlier
/// [`crate::streaming::StreamingSession::run_golden_batch`]) skips
/// matching entirely.
///
/// Always runs the **scalar reference** GEMM tier: "golden" here means
/// the bit-exact float replay of [`SsUNet::forward`]. Use
/// [`run_unet_golden_with`] to replay on a different backend (e.g. the
/// blocked throughput tier, epsilon-bounded).
///
/// No cycle model runs — this is the reference replay of what
/// [`run_unet`] offloads, plus the cache telemetry for it.
///
/// # Errors
///
/// Propagates network errors (shape/channel mismatches).
pub fn run_unet_golden(
    net: &SsUNet,
    input: &SparseTensor<f32>,
    cache: &Arc<RulebookCache>,
) -> Result<GoldenUnetRun> {
    run_unet_golden_with(net, input, cache, GemmBackendKind::ScalarRef)
}

/// [`run_unet_golden`] on an explicit GEMM backend tier. Logits are
/// bit-identical to [`SsUNet::forward`] only under
/// [`GemmBackendKind::ScalarRef`]; the blocked tier trades that for
/// throughput within the documented epsilon bound, still fully
/// deterministic.
///
/// # Errors
///
/// As [`run_unet_golden`].
pub fn run_unet_golden_with(
    net: &SsUNet,
    input: &SparseTensor<f32>,
    cache: &Arc<RulebookCache>,
    backend: GemmBackendKind,
) -> Result<GoldenUnetRun> {
    run_unet_golden_planned(net, input, cache, backend, None)
}

/// [`run_unet_golden_with`] with an optional whole-network geometry
/// [`PlanCache`]: when given, the engine records the U-Net's full
/// geometry plan (every level's rulebooks, strided/transpose maps) under
/// the frame fingerprint on the first pass and replays it — zero
/// per-layer cache probes — on every later frame with the same active
/// set. The plan cache's hit/miss/eviction/resident-bytes counters join
/// the returned metrics snapshot.
///
/// # Errors
///
/// As [`run_unet_golden`].
pub fn run_unet_golden_planned(
    net: &SsUNet,
    input: &SparseTensor<f32>,
    cache: &Arc<RulebookCache>,
    backend: GemmBackendKind,
    plans: Option<Arc<PlanCache>>,
) -> Result<GoldenUnetRun> {
    let mut engine =
        FlatEngine::with_cache_and_backend(Arc::clone(cache), backend).with_plan_cache(plans);
    let logits = net.forward_engine(input, &mut engine)?;
    let mut reg = Registry::new();
    cache.record_metrics(&mut reg);
    engine.record_gemm_metrics(&mut reg);
    if let Some(plans) = engine.plan_cache() {
        plans.record_metrics(&mut reg);
    }
    Ok(GoldenUnetRun {
        logits,
        cache_metrics: reg.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EscaConfig;
    use esca_sscn::unet::UNetConfig;
    use esca_tensor::{Coord3, Extent3};

    fn small_net() -> SsUNet {
        SsUNet::new(UNetConfig {
            input_channels: 1,
            levels: 2,
            base_channels: 8,
            blocks_per_level: 1,
            classes: 4,
            kernel: 3,
            seed: 5,
        })
        .unwrap()
    }

    fn blob() -> SparseTensor<f32> {
        let mut t = SparseTensor::new(Extent3::cube(24), 1);
        for i in 0..60i32 {
            t.insert(
                Coord3::new((i * 7) % 20, (i * 3) % 20, (i * 5) % 20),
                &[0.1 + 0.01 * i as f32],
            )
            .unwrap();
        }
        t.canonicalize();
        t
    }

    #[test]
    fn end_to_end_runs_and_accounts_time() {
        let net = small_net();
        let esca = Esca::new(EscaConfig::default()).unwrap();
        let run = run_unet(&net, &esca, &HostModel::default(), &blob(), 8).unwrap();
        assert!(run.logits.same_active_set(&blob()));
        assert_eq!(run.logits.channels(), 4);
        assert!(run.accel_s > 0.0);
        assert!(run.host_compute_s > 0.0);
        assert!(run.host_marshal_s > 0.0);
        assert!((0.0..=1.0).contains(&run.accel_fraction()));
        assert!(
            (run.end_to_end_s() - (run.accel_s + run.host_compute_s + run.host_marshal_s)).abs()
                < 1e-15
        );
        // All four Sub-Conv layers ran on the accelerator.
        assert!(run.accel.match_groups > 0);
    }

    #[test]
    fn pipeline_output_close_to_pure_float_forward() {
        let net = small_net();
        let esca = Esca::new(EscaConfig::default()).unwrap();
        let input = blob();
        let run = run_unet(&net, &esca, &HostModel::default(), &input, 12).unwrap();
        let float_logits = net.forward(&input).unwrap();
        let err = run.logits.max_abs_diff(&float_logits).unwrap();
        assert!(err < 0.05, "quantized pipeline drifted: {err}");
    }

    #[test]
    fn golden_unet_replay_reuses_rulebooks_and_reports_cache_metrics() {
        let net = small_net();
        let input = blob();
        let cache = Arc::new(RulebookCache::new());
        let run = run_unet_golden(&net, &input, &cache).unwrap();
        // Bit-identical to the pure float forward.
        let float_logits = net.forward(&input).unwrap();
        assert_eq!(run.logits.coords(), float_logits.coords());
        assert_eq!(run.logits.features(), float_logits.features());
        // One rulebook build per distinct geometry (level); same-level
        // encoder/decoder layers hit within the first pass already.
        let cold_misses = cache.misses();
        assert!(cold_misses >= 1);
        assert!(cache.hits() > 0, "encoder/decoder should share rulebooks");
        // A second replay is fully served from the cache.
        let run2 = run_unet_golden(&net, &input, &cache).unwrap();
        assert_eq!(
            cache.misses(),
            cold_misses,
            "warm replay rebuilt a rulebook"
        );
        assert_eq!(run2.logits.features(), run.logits.features());
        // The snapshot mirrors the live counters.
        let counter = |name: &str| {
            run2.cache_metrics
                .counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
        };
        assert_eq!(
            counter("esca_rulebook_cache_hits_total"),
            Some(cache.hits())
        );
        assert_eq!(
            counter("esca_rulebook_cache_misses_total"),
            Some(cache.misses())
        );
        assert!(run2
            .cache_metrics
            .gauges
            .iter()
            .any(|g| g.name == "esca_rulebook_cache_resident_bytes" && g.value > 0));
        // The engine's GEMM work counters carry the backend label (the
        // golden replay pins the bit-exact scalar reference tier).
        let gemm_macs = run2
            .cache_metrics
            .counters
            .iter()
            .find(|c| c.name == "esca_flat_gemm_macs_total")
            .expect("golden replay records GEMM work");
        assert!(gemm_macs.value > 0);
        assert_eq!(
            gemm_macs.labels,
            vec![("backend".to_string(), "scalar-ref".to_string())]
        );
    }

    #[test]
    fn golden_unet_replay_with_blocked_backend_is_epsilon_bounded() {
        let net = small_net();
        let input = blob();
        let cache = Arc::new(RulebookCache::new());
        let reference = run_unet_golden(&net, &input, &cache).unwrap();
        let blocked = run_unet_golden_with(&net, &input, &cache, GemmBackendKind::Blocked).unwrap();
        assert_eq!(blocked.logits.coords(), reference.logits.coords());
        for (x, y) in blocked
            .logits
            .features()
            .iter()
            .zip(reference.logits.features())
        {
            assert!((x - y).abs() <= 1e-4 * y.abs().max(1.0), "{x} vs {y}");
        }
        // Identical deterministic work totals, distinct backend labels.
        let macs = |run: &GoldenUnetRun, backend: &str| {
            run.cache_metrics
                .counters
                .iter()
                .find(|c| {
                    c.name == "esca_flat_gemm_macs_total"
                        && c.labels.iter().any(|(k, v)| k == "backend" && v == backend)
                })
                .map(|c| c.value)
        };
        assert_eq!(
            macs(&reference, "scalar-ref"),
            macs(&blocked, "blocked"),
            "GEMM work totals must not depend on the backend"
        );
    }

    #[test]
    fn planned_golden_unet_replays_and_reports_plan_metrics() {
        let net = small_net();
        let input = blob();
        let cache = Arc::new(RulebookCache::new());
        let baseline = run_unet_golden(&net, &input, &cache).unwrap();
        let plan_cache = Arc::new(RulebookCache::new());
        let plans = Arc::new(PlanCache::new());
        let first = run_unet_golden_planned(
            &net,
            &input,
            &plan_cache,
            GemmBackendKind::ScalarRef,
            Some(Arc::clone(&plans)),
        )
        .unwrap();
        assert_eq!(first.logits.features(), baseline.logits.features());
        assert_eq!((plans.misses(), plans.hits()), (1, 0));
        let probes = (plan_cache.hits(), plan_cache.misses());
        let second = run_unet_golden_planned(
            &net,
            &input,
            &plan_cache,
            GemmBackendKind::ScalarRef,
            Some(Arc::clone(&plans)),
        )
        .unwrap();
        assert_eq!(second.logits.features(), baseline.logits.features());
        assert_eq!(plans.hits(), 1);
        // The replay never probed the per-layer geometry cache.
        assert_eq!((plan_cache.hits(), plan_cache.misses()), probes);
        // Plan-cache counters travel with the snapshot.
        let counter = |name: &str| {
            second
                .cache_metrics
                .counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
        };
        assert_eq!(counter("esca_plan_cache_hits_total"), Some(1));
        assert_eq!(counter("esca_plan_cache_misses_total"), Some(1));
        assert!(second
            .cache_metrics
            .gauges
            .iter()
            .any(|g| g.name == "esca_plan_cache_resident_bytes" && g.value > 0));
    }

    #[test]
    fn accelerator_errors_surface() {
        let net = small_net();
        let mut cfg = EscaConfig::default();
        cfg.weight_buffer_bytes = 16;
        let esca = Esca::new(cfg).unwrap();
        let err = run_unet(&net, &esca, &HostModel::default(), &blob(), 8).unwrap_err();
        assert!(matches!(err, crate::EscaError::CapacityExceeded { .. }));
    }
}
