//! Serde round-trip tests: every serializable public type survives
//! JSON serialization unchanged (configs shared between runs, stats
//! dumped by the report machinery, DSE points consumed by tooling).

use esca::area::ResourceEstimate;
use esca::power::{PowerModel, PowerReport};
use esca::trace::{PipelineTrace, Stage};
use esca::{CycleStats, EscaConfig};

#[test]
fn config_roundtrip() {
    let mut cfg = EscaConfig::default();
    cfg.fifo_depth = 7;
    cfg.dram_overlap = 0.55;
    let json = serde_json::to_string(&cfg).unwrap();
    let back: EscaConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);
}

#[test]
fn stats_roundtrip() {
    let stats = CycleStats {
        pipeline_cycles: 123,
        matches: 456,
        effective_macs: 789,
        peak_fifo_occupancy: 3,
        ..CycleStats::default()
    };
    let json = serde_json::to_string(&stats).unwrap();
    let back: CycleStats = serde_json::from_str(&json).unwrap();
    assert_eq!(stats, back);
    assert_eq!(back.total_cycles(), stats.total_cycles());
}

#[test]
fn resource_estimate_roundtrip() {
    let est = ResourceEstimate::for_config(&EscaConfig::default());
    let json = serde_json::to_string(&est).unwrap();
    let back: ResourceEstimate = serde_json::from_str(&json).unwrap();
    assert_eq!(est, back);
}

#[test]
fn power_model_and_report_roundtrip() {
    let pm = PowerModel::default();
    let json = serde_json::to_string(&pm).unwrap();
    let back: PowerModel = serde_json::from_str(&json).unwrap();
    assert_eq!(pm, back);

    // Use non-empty stats: a zero-cycle run yields gops = 0/0 = NaN, and
    // NaN breaks equality (JSON also cannot carry it).
    let stats = CycleStats {
        pipeline_cycles: 1000,
        compute_busy_cycles: 500,
        effective_macs: 10_000,
        ..CycleStats::default()
    };
    let report = pm.report(&stats, &EscaConfig::default());
    let json = serde_json::to_string(&report).unwrap();
    let back: PowerReport = serde_json::from_str(&json).unwrap();
    // Floats may lose the last ulp through the JSON text form; compare
    // with a relative tolerance.
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(1.0);
    assert!(close(report.time_s, back.time_s));
    assert!(close(report.dynamic_j, back.dynamic_j));
    assert!(close(report.avg_power_w, back.avg_power_w));
    assert!(close(report.gops, back.gops));
    assert!(close(report.gops_per_w, back.gops_per_w));
}

#[test]
fn trace_roundtrip() {
    let mut t = PipelineTrace::new(true);
    t.record(0, Stage::ReadMasks, "a");
    t.record(3, Stage::Compute, "b");
    let json = serde_json::to_string(&t).unwrap();
    let back: PipelineTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(t.spans(), back.spans());
}

#[test]
fn telemetry_snapshot_roundtrip() {
    use esca_telemetry::{ChromeTrace, Registry, TelemetrySnapshot};

    let mut cycle = Registry::new();
    cycle.counter_add("esca_cycles_total", &[("layer", "0")], 1234);
    cycle.gauge_max("esca_peak_fifo_occupancy", &[], 7);
    cycle.observe("esca_match_group_size", &[], 5);
    cycle.observe("esca_match_group_size", &[], 0);
    let mut host = Registry::new();
    host.counter_add("esca_worker_frames_total", &[("worker", "1")], 3);

    let snap = TelemetrySnapshot::from_registries(&cycle, &host);
    let json = serde_json::to_string(&snap).unwrap();
    let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(snap, back);

    // The per-domain halves round-trip on their own too (the CLI writes
    // the cycle half alone on the `run`/`bench` path).
    let cycle_json = serde_json::to_string(&snap.cycle).unwrap();
    let cycle_back: esca_telemetry::MetricsSnapshot = serde_json::from_str(&cycle_json).unwrap();
    assert_eq!(snap.cycle, cycle_back);

    let mut trace = ChromeTrace::default();
    trace.push_complete("engine", "frame 0", 0, 90, 0, 1, "engine 1");
    trace.push_complete("engine", "frame 1", 90, 80, 0, 2, "engine 2");
    let trace_json = serde_json::to_string(&trace).unwrap();
    let trace_back: ChromeTrace = serde_json::from_str(&trace_json).unwrap();
    assert_eq!(trace, trace_back);
    assert!(trace_json.contains("traceEvents"));
}

#[test]
fn dse_point_roundtrip() {
    use esca::dse::DesignPoint;
    let p = DesignPoint {
        label: "x".into(),
        config: EscaConfig::default(),
        gops: 1.0,
        power_w: 2.0,
        gops_per_w: 0.5,
        dsp: 256,
        lut: 100,
        bram36: 365.5,
        cycles: 42,
    };
    let json = serde_json::to_string(&p).unwrap();
    let back: DesignPoint = serde_json::from_str(&json).unwrap();
    assert_eq!(p, back);
}
