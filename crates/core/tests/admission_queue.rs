//! Ingest-queue suite: the bounded admission plane in front of the
//! resilient worker pool (DESIGN.md §9).
//!
//! Invariants under test:
//!
//! 1. under a seeded overload campaign (arrivals at twice the queue's
//!    drain rate, two tenants with unequal quotas) only the over-quota
//!    tenant's frames are dropped, and every submitted frame gets
//!    exactly one [`FrameOutcome`];
//! 2. shedding partitions exactly: a tenant whose every frame is shed
//!    shows up in `dropped_shed` only — never double-counted against
//!    `Backpressure` — and the per-reason counters sum to
//!    `dropped_frames`;
//! 3. the admitted set and the whole cycle-domain snapshot are
//!    byte-identical across `(workers, shards)` splits and both GEMM
//!    backends for seeded mixed-tenant arrival orders.

use esca::admission::{AdmissionConfig, Arrival, TenantQuota};
use esca::resilience::{BackpressurePolicy, DropReason, FaultConfig, FrameOutcome};
use esca::streaming::StreamingSession;
use esca::{Esca, EscaConfig};
use esca_sscn::gemm::GemmBackendKind;
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
use esca_sscn::weights::ConvWeights;
use esca_telemetry::serve::{ObservabilityHub, OperatingPoint};
use esca_tensor::{Coord3, Extent3, QuantParams, SparseTensor, Q16};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn frame(seed: u64) -> SparseTensor<Q16> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = SparseTensor::<f32>::new(Extent3::cube(14), 2);
    for _ in 0..40 {
        let c = Coord3::new(
            rng.gen_range(0..14),
            rng.gen_range(0..14),
            rng.gen_range(0..14),
        );
        let f: Vec<f32> = (0..2).map(|_| rng.gen_range(-2.0..2.0)).collect();
        t.insert(c, &f).unwrap();
    }
    t.canonicalize();
    quantize_tensor(&t, QuantParams::new(8).unwrap())
}

fn stack() -> Vec<(QuantizedWeights, bool)> {
    vec![
        (
            QuantizedWeights::auto(&ConvWeights::seeded(3, 2, 8, 61), 8, 10).unwrap(),
            true,
        ),
        (
            QuantizedWeights::auto(&ConvWeights::seeded(3, 8, 4, 62), 8, 10).unwrap(),
            false,
        ),
    ]
}

fn session(workers: usize) -> StreamingSession {
    let esca = Esca::new(EscaConfig::default()).unwrap();
    StreamingSession::new(esca, stack(), workers)
}

const SPLITS: [(usize, usize); 4] = [(1, 1), (2, 1), (4, 1), (2, 2)];

/// The acceptance overload campaign: 8 frames alternating between two
/// tenants, arriving every 500 cycles against a 1000-cycle server
/// (2x overload). Tenant 1's refill matches its arrival rate; tenant
/// 2's bucket refills far too slowly, so after its burst token only
/// tenant 2 goes over quota.
fn overload_setup() -> (Vec<SparseTensor<Q16>>, Vec<Arrival>, AdmissionConfig) {
    let frames: Vec<_> = (0..8).map(|i| frame(i + 700)).collect();
    let arrivals: Vec<Arrival> = (0..8)
        .map(|i| Arrival {
            frame: i,
            tenant: if i % 2 == 0 { 1 } else { 2 },
            at_cycle: i as u64 * 500,
        })
        .collect();
    let admission = AdmissionConfig {
        queue_depth: 2,
        drain_cycles: 1000,
        tenants: vec![
            TenantQuota {
                tenant: 1,
                cycles_per_token: 1000,
                burst: 1,
                priority: 1,
            },
            TenantQuota {
                tenant: 2,
                cycles_per_token: 100_000,
                burst: 1,
                priority: 0,
            },
        ],
        ..AdmissionConfig::default()
    };
    (frames, arrivals, admission)
}

#[test]
fn overload_sheds_only_the_over_quota_tenant() {
    let (frames, arrivals, admission) = overload_setup();
    let cfg = FaultConfig::off(31);
    let report = session(2)
        .run_batch_ingest(&frames, &arrivals, &cfg, &admission)
        .unwrap();

    // Exactly one FrameOutcome per submitted frame, in frame order.
    assert_eq!(report.frames.len(), frames.len());
    for (i, fr) in report.frames.iter().enumerate() {
        assert_eq!(fr.frame, i);
    }
    // Tenant 1 stays entirely within quota; tenant 2's burst token
    // admits its first frame, every later one is over quota. Nothing is
    // dropped for any other reason.
    for fr in &report.frames {
        if fr.tenant == 1 || fr.frame == 1 {
            assert!(fr.outcome.completed(), "frame {} must complete", fr.frame);
        } else {
            assert_eq!(
                fr.outcome,
                FrameOutcome::Dropped {
                    reason: DropReason::OverQuota
                },
                "only over-quota arrivals may be dropped"
            );
            assert!(report.outputs[fr.frame].is_none());
        }
    }
    assert_eq!(report.completed(), 5);
    assert_eq!(report.counters.dropped_frames, 3);
    assert_eq!(report.counters.dropped_over_quota, 3);
    assert_eq!(report.counters.dropped_backpressure, 0);
    assert_eq!(report.counters.dropped_shed, 0);
    assert_eq!(report.queue_peak, 2);
    // The modeled server drains back-to-back: each admitted frame's
    // service start is a multiple of the drain time.
    for rec in &report.admissions {
        if let Some(start) = rec.start_cycle {
            assert_eq!(start % 1000, 0);
            assert!(rec.queue_wait_cycles() <= 1000);
        }
    }
}

#[test]
fn overload_cycle_domain_is_byte_identical_across_splits() {
    let (frames, arrivals, admission) = overload_setup();
    let cfg = FaultConfig::off(31);
    let reference = session(1)
        .run_batch_ingest(&frames, &arrivals, &cfg, &admission)
        .unwrap();
    let ref_bytes = serde_json::to_string(&reference.telemetry.cycle).unwrap();
    for (workers, shards) in SPLITS {
        let report = session(workers)
            .with_layer_shards(shards)
            .run_batch_ingest(&frames, &arrivals, &cfg, &admission)
            .unwrap();
        assert_eq!(report.admissions, reference.admissions);
        assert_eq!(report.frames, reference.frames);
        assert_eq!(
            serde_json::to_string(&report.telemetry.cycle).unwrap(),
            ref_bytes,
            "cycle domain must be byte-identical at {workers}x{shards}"
        );
    }
}

#[test]
fn configured_operating_point_reaches_healthz() {
    let (frames, arrivals, admission) = overload_setup();
    let op = OperatingPoint {
        fault_rate_ppm: 0,
        max_retries: 2,
        cycle_budget: 0,
        queue_depth: 2,
        availability_ppm: 625_000,
        p99_latency_cycles: 3_000,
    };
    let hub = Arc::new(ObservabilityHub::new());
    let session = session(2)
        .with_hub(Arc::clone(&hub))
        .with_operating_point(op);
    let cfg = FaultConfig::off(31);
    session
        .run_batch_ingest(&frames, &arrivals, &cfg, &admission)
        .unwrap();
    let health = hub.health();
    assert_eq!(health.phase, "done");
    assert_eq!(health.admission_policy, "reject_new");
    assert_eq!(health.admission_depth, 2);
    assert_eq!(
        health.operating_point,
        Some(op),
        "the selector's choice must be visible in /healthz"
    );
    let json = serde_json::to_string(&*health).unwrap();
    assert!(json.contains("\"availability_ppm\":625000"));
}

#[test]
fn shedding_a_whole_tenant_partitions_the_counters() {
    // Tenant 7 (priority 1) arrives first and keeps arriving; tenant 3
    // (priority 0) lands in the waiting slots and is shed frame by
    // frame. A final tenant-7 arrival finds only same-priority waiters
    // and takes the backpressure rung instead.
    let frames: Vec<_> = (0..6).map(|i| frame(i + 740)).collect();
    let tenants = [7u32, 3, 3, 7, 7, 7];
    let arrivals: Vec<Arrival> = tenants
        .iter()
        .enumerate()
        .map(|(i, &tenant)| Arrival {
            frame: i,
            tenant,
            at_cycle: 0,
        })
        .collect();
    let admission = AdmissionConfig {
        queue_depth: 3,
        drain_cycles: u64::MAX,
        tenants: vec![TenantQuota {
            tenant: 7,
            cycles_per_token: 0,
            burst: 0,
            priority: 1,
        }],
        backpressure: BackpressurePolicy::RejectNew,
        ..AdmissionConfig::default()
    };
    let cfg = FaultConfig::off(33);
    let report = session(2)
        .run_batch_ingest(&frames, &arrivals, &cfg, &admission)
        .unwrap();

    // Every tenant-3 frame was shed — and *only* shed, never also
    // counted as backpressure.
    for fr in &report.frames {
        if fr.tenant == 3 {
            assert_eq!(
                fr.outcome,
                FrameOutcome::Dropped {
                    reason: DropReason::Shed { tenant: 3 }
                }
            );
        }
    }
    let c = &report.counters;
    assert_eq!(c.dropped_shed, 2);
    assert_eq!(c.dropped_backpressure, 1, "the final same-priority reject");
    assert_eq!(c.dropped_over_quota, 0);
    assert_eq!(c.dropped_deadline, 0);
    assert_eq!(
        c.dropped_frames,
        c.dropped_backpressure + c.dropped_deadline + c.dropped_shed + c.dropped_over_quota,
        "per-reason drop counters must partition dropped_frames exactly"
    );
    assert_eq!(
        c.ok_frames + c.retried_frames + c.failed_frames + c.dropped_frames,
        6
    );

    // The per-tenant series agree with the report.
    let shed_t3 = report
        .telemetry
        .cycle
        .counters
        .iter()
        .find(|ctr| {
            ctr.name == "esca_tenant_shed_total"
                && ctr.labels.iter().any(|(k, v)| k == "tenant" && v == "3")
        })
        .map(|ctr| ctr.value);
    assert_eq!(shed_t3, Some(2));
}

#[test]
fn admitted_set_is_byte_identical_across_splits_backends_and_orders() {
    // Seeded property check: for shuffled mixed-tenant arrival orders,
    // the admitted set and the cycle-domain snapshot never depend on
    // the (workers, shards) split or the GEMM backend.
    let frames: Vec<_> = (0..8).map(|i| frame(i + 770)).collect();
    let admission = AdmissionConfig {
        queue_depth: 3,
        drain_cycles: 800,
        degrade_occupancy_pct: 66,
        tenants: vec![
            TenantQuota {
                tenant: 1,
                cycles_per_token: 1500,
                burst: 2,
                priority: 2,
            },
            TenantQuota {
                tenant: 2,
                cycles_per_token: 0,
                burst: 0,
                priority: 1,
            },
        ],
        backpressure: BackpressurePolicy::DropOldest,
    };
    let cfg = FaultConfig::off(35);
    let mut rng = StdRng::seed_from_u64(0xAD31);
    for round in 0..3 {
        let mut order: Vec<usize> = (0..8).collect();
        order.shuffle(&mut rng);
        let arrivals: Vec<Arrival> = order
            .iter()
            .enumerate()
            .map(|(slot, &f)| Arrival {
                frame: f,
                tenant: (f % 3) as u32,
                at_cycle: slot as u64 * rng.gen_range(200..600),
            })
            .collect();
        let mut reference: Option<(Vec<(usize, String)>, String)> = None;
        for (workers, shards) in SPLITS {
            for backend in GemmBackendKind::ALL {
                let report = session(workers)
                    .with_layer_shards(shards)
                    .with_gemm_backend(backend)
                    .run_batch_ingest(&frames, &arrivals, &cfg, &admission)
                    .unwrap();
                let admitted: Vec<(usize, String)> = report
                    .admissions
                    .iter()
                    .filter(|rec| rec.verdict.runs())
                    .map(|rec| (rec.frame, rec.verdict.label()))
                    .collect();
                let bytes = serde_json::to_string(&report.telemetry.cycle).unwrap();
                match &reference {
                    None => reference = Some((admitted, bytes)),
                    Some((ref_admitted, ref_bytes)) => {
                        assert_eq!(
                            &admitted, ref_admitted,
                            "round {round}: admitted set diverged at \
                             {workers}x{shards}/{backend:?}"
                        );
                        assert_eq!(
                            &bytes, ref_bytes,
                            "round {round}: cycle snapshot diverged at \
                             {workers}x{shards}/{backend:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn malformed_arrival_sequences_are_config_errors() {
    let frames: Vec<_> = (0..2).map(|i| frame(i + 790)).collect();
    let cfg = FaultConfig::off(37);
    let admission = AdmissionConfig::default();
    let dup = vec![
        Arrival {
            frame: 0,
            tenant: 0,
            at_cycle: 0,
        },
        Arrival {
            frame: 0,
            tenant: 0,
            at_cycle: 10,
        },
    ];
    assert!(session(1)
        .run_batch_ingest(&frames, &dup, &cfg, &admission)
        .is_err());
    let short = vec![Arrival {
        frame: 0,
        tenant: 0,
        at_cycle: 0,
    }];
    assert!(session(1)
        .run_batch_ingest(&frames, &short, &cfg, &admission)
        .is_err());
}
