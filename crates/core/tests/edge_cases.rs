//! Edge-case and failure-injection tests for the accelerator model:
//! non-default kernel sizes, partial tiles at grid boundaries, buffer
//! capacity exhaustion, and degenerate workloads.

use esca::{Esca, EscaConfig, EscaError};
use esca_sscn::quant::{quantize_tensor, submanifold_conv3d_q, QuantizedWeights};
use esca_sscn::weights::ConvWeights;
use esca_tensor::{Coord3, Extent3, QuantParams, SparseTensor, TileShape, Q16};

fn quant_input(side: u32, ch: usize, coords: &[(i32, i32, i32)]) -> SparseTensor<Q16> {
    let mut t = SparseTensor::<f32>::new(Extent3::cube(side), ch);
    for (i, &(x, y, z)) in coords.iter().enumerate() {
        let f: Vec<f32> = (0..ch).map(|c| 0.1 * (i + c + 1) as f32).collect();
        t.insert(Coord3::new(x, y, z), &f).unwrap();
    }
    t.canonicalize();
    quantize_tensor(&t, QuantParams::new(8).unwrap())
}

#[test]
fn kernel5_matches_golden_with_25_fifos() {
    // K = 5 means a 25-column SDMU and a 5³ = 125-tap kernel.
    let mut cfg = EscaConfig::default();
    cfg.kernel = 5;
    let esca = Esca::new(cfg).unwrap();
    let qin = quant_input(
        16,
        2,
        &[
            (3, 3, 3),
            (4, 3, 3),
            (5, 3, 5),
            (3, 6, 3),
            (7, 7, 7),
            (8, 8, 8),
        ],
    );
    let w = ConvWeights::seeded(5, 2, 6, 11);
    let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
    let run = esca.run_layer(&qin, &qw, false).unwrap();
    let golden = submanifold_conv3d_q(&qin, &qw, false).unwrap();
    assert!(run.output.same_content(&golden));
    // Matches reach across the wider receptive field.
    assert!(run.stats.matches > qin.nnz() as u64);
}

#[test]
fn kernel1_is_pointwise() {
    let mut cfg = EscaConfig::default();
    cfg.kernel = 1;
    let esca = Esca::new(cfg).unwrap();
    let qin = quant_input(8, 3, &[(1, 1, 1), (5, 5, 5)]);
    let w = ConvWeights::seeded(1, 3, 4, 12);
    let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
    let run = esca.run_layer(&qin, &qw, false).unwrap();
    let golden = submanifold_conv3d_q(&qin, &qw, false).unwrap();
    assert!(run.output.same_content(&golden));
    // Pointwise: exactly one match per site.
    assert_eq!(run.stats.matches, qin.nnz() as u64);
}

#[test]
fn non_divisible_extent_uses_partial_tiles() {
    // 10³ grid with 8³ tiles: boundary tiles are partial.
    let mut t = SparseTensor::<f32>::new(Extent3::new(10, 10, 10), 1);
    t.insert(Coord3::new(9, 9, 9), &[1.0]).unwrap();
    t.insert(Coord3::new(8, 9, 9), &[0.5]).unwrap();
    t.insert(Coord3::new(0, 0, 0), &[0.25]).unwrap();
    let qin = quantize_tensor(&t, QuantParams::new(8).unwrap());
    let w = ConvWeights::seeded(3, 1, 4, 13);
    let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
    let run = Esca::new(EscaConfig::default())
        .unwrap()
        .run_layer(&qin, &qw, false)
        .unwrap();
    let golden = submanifold_conv3d_q(&qin, &qw, false).unwrap();
    assert!(run.output.same_content(&golden));
    // The corner tile has 2³ = 8 sites only; total scanned is less than
    // two full 8³ tiles.
    assert!(run.stats.scanned_sites < 2 * 512);
}

#[test]
fn anisotropic_tiles_work() {
    let mut cfg = EscaConfig::default();
    cfg.tile = TileShape::new(4, 8, 2);
    let esca = Esca::new(cfg).unwrap();
    let qin = quant_input(16, 1, &[(1, 2, 3), (1, 2, 4), (9, 10, 11)]);
    let w = ConvWeights::seeded(3, 1, 4, 14);
    let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
    let run = esca.run_layer(&qin, &qw, false).unwrap();
    let golden = submanifold_conv3d_q(&qin, &qw, false).unwrap();
    assert!(run.output.same_content(&golden));
}

#[test]
fn weight_buffer_overflow_is_reported() {
    let mut cfg = EscaConfig::default();
    cfg.weight_buffer_bytes = 64; // far too small for any real layer
    let esca = Esca::new(cfg).unwrap();
    let qin = quant_input(8, 4, &[(1, 1, 1)]);
    let w = ConvWeights::seeded(3, 4, 16, 15);
    let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
    match esca.run_layer(&qin, &qw, false) {
        Err(EscaError::CapacityExceeded { buffer, .. }) => {
            assert_eq!(buffer, "weight buffer");
        }
        other => panic!("expected capacity error, got {other:?}"),
    }
}

#[test]
fn activation_buffer_overflow_is_reported() {
    let mut cfg = EscaConfig::default();
    cfg.act_buffer_bytes = 8; // cannot hold even one tile's activations
    let esca = Esca::new(cfg).unwrap();
    let qin = quant_input(8, 4, &[(1, 1, 1), (1, 1, 2), (2, 2, 2)]);
    let w = ConvWeights::seeded(3, 4, 4, 16);
    let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
    match esca.run_layer(&qin, &qw, false) {
        Err(EscaError::CapacityExceeded { buffer, .. }) => {
            assert_eq!(buffer, "activation buffer");
        }
        other => panic!("expected capacity error, got {other:?}"),
    }
}

#[test]
fn single_voxel_grid() {
    let mut t = SparseTensor::<f32>::new(Extent3::new(1, 1, 1), 2);
    t.insert(Coord3::ORIGIN, &[1.0, -1.0]).unwrap();
    let qin = quantize_tensor(&t, QuantParams::new(8).unwrap());
    let w = ConvWeights::seeded(3, 2, 3, 17);
    let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
    let run = Esca::new(EscaConfig::default())
        .unwrap()
        .run_layer(&qin, &qw, false)
        .unwrap();
    let golden = submanifold_conv3d_q(&qin, &qw, false).unwrap();
    assert!(run.output.same_content(&golden));
    assert_eq!(run.stats.matches, 1);
}

#[test]
fn saturating_activations_still_match_golden() {
    // Values at the INT16 rails exercise requantization saturation.
    let mut t = SparseTensor::<Q16>::new(Extent3::cube(6), 1);
    t.insert(Coord3::new(2, 2, 2), &[Q16(i16::MAX)]).unwrap();
    t.insert(Coord3::new(2, 2, 3), &[Q16(i16::MIN)]).unwrap();
    t.insert(Coord3::new(2, 3, 2), &[Q16(i16::MAX)]).unwrap();
    t.canonicalize();
    let mut w = ConvWeights::zeros(3, 1, 2);
    for tap in 0..27 {
        w.set_w(tap, 0, 0, 0.9);
        w.set_w(tap, 0, 1, -0.9);
    }
    let qw = QuantizedWeights::auto(&w, 0, 7).unwrap();
    let run = Esca::new(EscaConfig::default())
        .unwrap()
        .run_layer(&t, &qw, false)
        .unwrap();
    let golden = submanifold_conv3d_q(&t, &qw, false).unwrap();
    assert!(run.output.same_content(&golden));
}

#[test]
fn dense_full_tile_worst_case() {
    // Every site of one 4³ tile active: maximal match density.
    let mut t = SparseTensor::<f32>::new(Extent3::cube(8), 1);
    for x in 0..4 {
        for y in 0..4 {
            for z in 0..4 {
                t.insert(Coord3::new(x, y, z), &[0.5]).unwrap();
            }
        }
    }
    let qin = quantize_tensor(&t, QuantParams::new(8).unwrap());
    let mut cfg = EscaConfig::default();
    cfg.tile = TileShape::cube(4);
    let w = ConvWeights::seeded(3, 1, 16, 18);
    let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
    let run = Esca::new(cfg).unwrap().run_layer(&qin, &qw, false).unwrap();
    let golden = submanifold_conv3d_q(&qin, &qw, false).unwrap();
    assert!(run.output.same_content(&golden));
    // Interior sites have all 27 neighbors: 2³ interior sites × 27 plus
    // boundary contributions.
    assert!(run.stats.mean_match_group() > 10.0);
}

#[test]
fn weight_prefetch_overlap_reduces_cycles() {
    let qin = quant_input(12, 4, &[(1, 1, 1), (2, 2, 2), (5, 5, 5), (6, 6, 6)]);
    let w = ConvWeights::seeded(3, 4, 32, 19);
    let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
    let base = Esca::new(EscaConfig::default())
        .unwrap()
        .run_layer(&qin, &qw, false)
        .unwrap();
    let mut cfg = EscaConfig::default();
    cfg.weight_load_overlap = true;
    let overlapped = Esca::new(cfg).unwrap().run_layer(&qin, &qw, false).unwrap();
    assert!(overlapped.stats.total_cycles() < base.stats.total_cycles());
    // Results identical, only timing changes.
    assert!(overlapped.output.same_content(&base.output));
}

#[test]
fn non_cubic_grid_end_to_end() {
    let mut t = SparseTensor::<f32>::new(Extent3::new(32, 12, 20), 2);
    for i in 0..25i32 {
        t.insert(
            Coord3::new((i * 5) % 32, (i * 3) % 12, (i * 7) % 20),
            &[0.2, -0.3],
        )
        .unwrap();
    }
    t.canonicalize();
    let qin = quantize_tensor(&t, QuantParams::new(8).unwrap());
    let w = ConvWeights::seeded(3, 2, 8, 20);
    let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
    let run = Esca::new(EscaConfig::default())
        .unwrap()
        .run_layer(&qin, &qw, true)
        .unwrap();
    let golden = submanifold_conv3d_q(&qin, &qw, true).unwrap();
    assert!(run.output.same_content(&golden));
}

#[test]
fn lane_underfill_is_visible_in_utilization() {
    // IC = 1 (the U-Net stem case): only 1 of 16 IC lanes does useful
    // work, so array utilization must be ≈ 1/16 while a full 16-channel
    // layer is ≈ 1.0.
    let qin_1 = quant_input(12, 1, &[(2, 2, 2), (2, 2, 3), (4, 4, 4)]);
    let qw_1 = QuantizedWeights::auto(&ConvWeights::seeded(3, 1, 16, 21), 8, 10).unwrap();
    let run_1 = Esca::new(EscaConfig::default())
        .unwrap()
        .run_layer(&qin_1, &qw_1, false)
        .unwrap();
    assert!(
        (run_1.stats.array_utilization() - 1.0 / 16.0).abs() < 0.01,
        "stem-like utilization {}",
        run_1.stats.array_utilization()
    );

    let qin_16 = quant_input(12, 16, &[(2, 2, 2), (2, 2, 3), (4, 4, 4)]);
    let qw_16 = QuantizedWeights::auto(&ConvWeights::seeded(3, 16, 16, 22), 8, 10).unwrap();
    let run_16 = Esca::new(EscaConfig::default())
        .unwrap()
        .run_layer(&qin_16, &qw_16, false)
        .unwrap();
    assert!(
        (run_16.stats.array_utilization() - 1.0).abs() < 1e-9,
        "full utilization {}",
        run_16.stats.array_utilization()
    );
}
