//! Chaos suite for the fault-injection and graceful-degradation layer.
//!
//! Invariants under test (DESIGN.md §9):
//!
//! 1. a campaign is **replay-identical**: the same seed produces the same
//!    fault sites, the same per-frame outcomes, and the same cycle-domain
//!    telemetry for any worker or shard count;
//! 2. frames no undetected fault touched are **byte-identical** to a
//!    fault-free run — outputs and per-frame cycle stats;
//! 3. `run_batch_resilient` always returns a **complete report** — one
//!    entry per input frame, no hangs, no lost frames — even when every
//!    attempt panics;
//! 4. degradation is policy-shaped: bounded admission, cycle deadlines
//!    and the rulebook→direct-kernel fallback all behave as configured.

use esca::resilience::{BackpressurePolicy, DetectionModel, DropReason, FaultConfig, FrameOutcome};
use esca::streaming::StreamingSession;
use esca::{Esca, EscaConfig};
use esca_sscn::gemm::GemmBackendKind;
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
use esca_sscn::weights::ConvWeights;
use esca_tensor::{Coord3, Extent3, QuantParams, SparseTensor, Q16};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

fn frame(seed: u64) -> SparseTensor<Q16> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut t = SparseTensor::<f32>::new(Extent3::cube(16), 2);
    for _ in 0..40 {
        let c = Coord3::new(
            rng.gen_range(0..16),
            rng.gen_range(0..16),
            rng.gen_range(0..16),
        );
        let f: Vec<f32> = (0..2).map(|_| rng.gen_range(-2.0..2.0)).collect();
        t.insert(c, &f).unwrap();
    }
    t.canonicalize();
    quantize_tensor(&t, QuantParams::new(8).unwrap())
}

fn layers() -> Vec<(QuantizedWeights, bool)> {
    vec![
        (
            QuantizedWeights::auto(&ConvWeights::seeded(3, 2, 8, 21), 8, 10).unwrap(),
            true,
        ),
        (
            QuantizedWeights::auto(&ConvWeights::seeded(3, 8, 4, 22), 8, 10).unwrap(),
            false,
        ),
    ]
}

fn session(workers: usize) -> StreamingSession {
    let esca = Esca::new(EscaConfig::default()).unwrap();
    StreamingSession::new(esca, layers(), workers)
}

#[test]
fn campaign_replays_exactly_across_worker_counts() {
    let frames: Vec<_> = (0..6).map(|i| frame(i + 400)).collect();
    let cfg = FaultConfig::campaign(0xC4A5);
    let a = session(1).run_batch_resilient(&frames, &cfg).unwrap();
    let b = session(4).run_batch_resilient(&frames, &cfg).unwrap();
    // Same fault sites, same verdicts, same outcomes — record for record.
    assert_eq!(a.frames, b.frames);
    assert_eq!(a.counters, b.counters);
    // Outputs (where present) are bitwise equal too.
    for (x, y) in a.outputs.iter().zip(&b.outputs) {
        match (x, y) {
            (Some(x), Some(y)) => {
                assert_eq!(x.coords(), y.coords());
                assert_eq!(x.features(), y.features());
            }
            (None, None) => {}
            _ => panic!("completion fate differs between worker counts"),
        }
    }
    // The campaign actually exercised the injector.
    assert!(a.counters.total_injected() > 0, "campaign injected nothing");
}

#[test]
fn healthy_frames_are_byte_identical_to_fault_free_run() {
    let frames: Vec<_> = (0..6).map(|i| frame(i + 500)).collect();
    let clean = session(2).run_batch(&frames).unwrap();
    for workers in [1usize, 3] {
        let report = session(workers)
            .run_batch_resilient(&frames, &FaultConfig::campaign(0xFEED))
            .unwrap();
        assert_eq!(report.frames.len(), frames.len());
        let healthy = report.healthy_frames();
        assert!(
            !healthy.is_empty(),
            "campaign left no healthy frame to compare"
        );
        for idx in healthy {
            let out = report.outputs[idx]
                .as_ref()
                .expect("healthy frame has an output");
            assert_eq!(out.coords(), clean.outputs[idx].coords());
            assert_eq!(out.features(), clean.outputs[idx].features());
            let stats = report.per_frame[idx]
                .as_ref()
                .expect("healthy frame has stats");
            assert_eq!(stats, &clean.per_frame[idx], "cycle stats drifted");
        }
    }
}

#[test]
fn injection_off_is_equivalent_to_plain_streaming() {
    let frames: Vec<_> = (0..4).map(|i| frame(i + 550)).collect();
    let clean = session(2).run_batch(&frames).unwrap();
    let report = session(2)
        .run_batch_resilient(&frames, &FaultConfig::off(1))
        .unwrap();
    assert_eq!(report.counters.total_injected(), 0);
    assert_eq!(report.completed(), frames.len());
    for (idx, out) in report.outputs.iter().enumerate() {
        let out = out.as_ref().expect("all frames complete");
        assert_eq!(out.features(), clean.outputs[idx].features());
        assert_eq!(
            report.per_frame[idx].as_ref().expect("stats present"),
            &clean.per_frame[idx]
        );
    }
    assert!(report.frames.iter().all(|f| f.outcome == FrameOutcome::Ok));
}

#[test]
fn report_is_complete_even_when_every_attempt_panics() {
    let frames: Vec<_> = (0..5).map(|i| frame(i + 600)).collect();
    let mut cfg = FaultConfig::off(3);
    cfg.rates.worker_panic = 1.0;
    let report = session(3).run_batch_resilient(&frames, &cfg).unwrap();
    // No hang, no lost frame: every frame reports, none completed.
    assert_eq!(report.frames.len(), 5);
    assert_eq!(report.completed(), 0);
    for fr in &report.frames {
        assert_eq!(fr.attempts, cfg.recovery.max_retries + 1);
        assert!(
            matches!(
                &fr.outcome,
                FrameOutcome::Failed {
                    error: esca::EscaError::WorkerPanic { .. }
                }
            ),
            "unexpected outcome {:?}",
            fr.outcome
        );
    }
    let panics = report.counters.injected[esca::FaultClass::WorkerPanic as usize];
    assert_eq!(panics, 5 * u64::from(cfg.recovery.max_retries + 1));
}

#[test]
fn detected_faults_retry_and_recover() {
    // Frame corruption at rate 1.0 on attempt 0 only: plan_for draws per
    // attempt, so retries re-roll. Force it deterministic instead: rate
    // 1.0 with full detection means *every* attempt faults, exhausting
    // retries; rate 1.0 with detection off means silent corruption and
    // first-try "success".
    let frames: Vec<_> = (0..3).map(|i| frame(i + 650)).collect();
    let mut cfg = FaultConfig::off(7);
    cfg.rates.frame_corrupt = 1.0;
    let report = session(2).run_batch_resilient(&frames, &cfg).unwrap();
    assert_eq!(report.completed(), 0);
    assert!(report.frames.iter().all(|f| matches!(
        &f.outcome,
        FrameOutcome::Failed {
            error: esca::EscaError::MemoryFault { .. }
        }
    )));
    // Same faults, no checksum: the stream degrades instead of failing —
    // every frame completes but is flagged, and none is "healthy".
    cfg.detection = DetectionModel::none();
    let silent = session(2).run_batch_resilient(&frames, &cfg).unwrap();
    assert_eq!(silent.completed(), 3);
    assert!(silent.frames.iter().all(|f| f.silent_corruption));
    assert!(silent.healthy_frames().is_empty());
    assert_eq!(silent.counters.silent_corruptions, 3);
}

#[test]
fn cycle_telemetry_is_invariant_under_injection() {
    let frames: Vec<_> = (0..5).map(|i| frame(i + 700)).collect();
    let cfg = FaultConfig::campaign(0xA11CE);
    let mut cycle_snapshots = Vec::new();
    for (workers, shards) in [(1usize, 1usize), (3, 1), (2, 2)] {
        let report = session(workers)
            .with_layer_shards(shards)
            .run_batch_resilient(&frames, &cfg)
            .unwrap();
        // Fault counters live in the cycle domain.
        assert!(report
            .telemetry
            .cycle
            .counters
            .iter()
            .any(|c| c.name == "esca_faults_injected_total"));
        // Wall time never does.
        assert!(!report
            .telemetry
            .cycle
            .histograms
            .iter()
            .any(|h| h.name.contains("wall")));
        cycle_snapshots.push(report.telemetry.cycle);
    }
    assert_eq!(cycle_snapshots[0], cycle_snapshots[1]);
    assert_eq!(cycle_snapshots[0], cycle_snapshots[2]);
}

#[test]
fn admission_policies_bound_the_batch() {
    let frames: Vec<_> = (0..6).map(|i| frame(i + 800)).collect();
    let mut cfg = FaultConfig::off(11);
    cfg.recovery.admission_depth = Some(2);
    cfg.recovery.backpressure = BackpressurePolicy::RejectNew;
    let reject = session(2).run_batch_resilient(&frames, &cfg).unwrap();
    assert_eq!(reject.completed(), 2);
    for fr in &reject.frames {
        if fr.frame < 2 {
            assert_eq!(fr.outcome, FrameOutcome::Ok);
        } else {
            assert_eq!(
                fr.outcome,
                FrameOutcome::Dropped {
                    reason: DropReason::Backpressure
                }
            );
            assert!(reject.outputs[fr.frame].is_none());
        }
    }
    cfg.recovery.backpressure = BackpressurePolicy::DropOldest;
    let drop_oldest = session(2).run_batch_resilient(&frames, &cfg).unwrap();
    assert_eq!(drop_oldest.completed(), 2);
    // The ingest queue never preempts the frame already in service, so a
    // zero-cycle burst keeps the head (frame 0) plus the newest waiting
    // slot — later arrivals evict the older *waiting* frames.
    for fr in &drop_oldest.frames {
        assert_eq!(
            fr.outcome.completed(),
            fr.frame == 0 || fr.frame == 5,
            "head and newest survive eviction churn"
        );
    }
    assert_eq!(reject.counters.dropped_frames, 4);
    assert_eq!(drop_oldest.counters.dropped_frames, 4);
}

#[test]
fn cycle_deadline_drops_runaway_frames() {
    let frames: Vec<_> = (0..3).map(|i| frame(i + 900)).collect();
    let mut cfg = FaultConfig::off(13);
    cfg.rates.frame_corrupt = 1.0; // every attempt fails (detected)
    cfg.recovery.cycle_budget = Some(1); // exhausted after attempt 0
    let report = session(2).run_batch_resilient(&frames, &cfg).unwrap();
    for fr in &report.frames {
        assert_eq!(fr.attempts, 1, "deadline must preempt further retries");
        assert_eq!(
            fr.outcome,
            FrameOutcome::Dropped {
                reason: DropReason::DeadlineExceeded
            }
        );
        assert!(fr.spent_cycles >= 1);
    }
    assert_eq!(report.counters.dropped_frames, 3);
}

#[test]
fn corrupt_rulebooks_fall_back_or_are_flagged() {
    // Parameterized over the GEMM backend: the silent-corruption replay
    // path runs the flat engine, so both the scalar-ref and the blocked
    // microkernel must uphold the fallback contract. The quantized path
    // is bit-exact across backends, so the per-frame verdicts — and the
    // fallback outputs — must not depend on the backend either.
    let frames: Vec<_> = (0..6).map(|i| frame(i + 950)).collect();
    let clean = session(2).run_batch(&frames).unwrap();
    let mut cfg = FaultConfig::off(17);
    cfg.rates.rulebook_corrupt = 1.0;
    let mut verdicts: Vec<Vec<(bool, bool)>> = Vec::new();
    for kind in GemmBackendKind::ALL {
        let report = session(2)
            .with_gemm_backend(kind)
            .run_batch_resilient(&frames, &cfg)
            .unwrap();
        assert_eq!(
            report.completed(),
            6,
            "{kind}: rulebook faults never lose frames"
        );
        let mut fallbacks = 0;
        for fr in &report.frames {
            // Every frame either fell back to the direct kernels
            // (verification caught the corruption; output bit-exact) or
            // is flagged silent.
            assert!(
                fr.fell_back ^ fr.silent_corruption,
                "{kind}: frame {} neither fell back nor was flagged",
                fr.frame
            );
            if fr.fell_back {
                fallbacks += 1;
                let out = report.outputs[fr.frame].as_ref().unwrap();
                assert_eq!(out.features(), clean.outputs[fr.frame].features());
            }
        }
        assert_eq!(report.counters.fallbacks, fallbacks);
        verdicts.push(
            report
                .frames
                .iter()
                .map(|f| (f.fell_back, f.silent_corruption))
                .collect(),
        );
        // The campaign summary serializes (the CLI's --chaos-out path).
        let json = serde_json::to_string(&report.summary()).unwrap();
        assert!(json.contains("rulebook_corrupt"));
    }
    assert_eq!(
        verdicts[0], verdicts[1],
        "fallback verdicts must not depend on the GEMM backend"
    );
}

#[test]
fn retries_recover_transient_faults_under_mixed_campaign() {
    // A long mixed campaign at moderate rates: re-rolls across attempts
    // make most detected faults transient, so retried frames recover and
    // stay byte-identical to the clean run.
    let frames: Vec<_> = (0..10).map(|i| frame(i + 1000)).collect();
    let clean = session(2).run_batch(&frames).unwrap();
    let report = session(3)
        .run_batch_resilient(&frames, &FaultConfig::campaign(0xBEEF))
        .unwrap();
    let c = &report.counters;
    assert_eq!(
        c.ok_frames + c.retried_frames + c.failed_frames + c.dropped_frames,
        10,
        "outcome counters must partition the batch"
    );
    assert!(c.total_injected() > 0);
    let retried: Vec<_> = report
        .frames
        .iter()
        .filter(|f| matches!(f.outcome, FrameOutcome::Retried { .. }))
        .collect();
    for fr in &retried {
        assert!(fr.attempts > 1);
        if fr.healthy() {
            let out = report.outputs[fr.frame].as_ref().unwrap();
            assert_eq!(out.features(), clean.outputs[fr.frame].features());
        }
    }
    // Detected-only classes can never corrupt silently.
    assert!(
        c.detected[esca::FaultClass::WorkerPanic as usize]
            <= c.injected[esca::FaultClass::WorkerPanic as usize]
    );
}
