//! Committed golden test vectors, hardware-verification style.
//!
//! The bit-exactness tests elsewhere compare the accelerator against the
//! golden model *computed in the same build* — they cannot catch a
//! semantic change that alters both implementations identically (e.g. an
//! accidental change to the shared rounding). The fixture below pins the
//! expected output of one fully-specified layer **as data committed to
//! the repository**, so any drift in arithmetic semantics fails loudly.
//!
//! Regenerate (after an *intentional* semantic change) with:
//! `cargo test -p esca --test fixture_vectors -- --ignored regenerate`
//! and commit the rewritten file.

use esca::{Esca, EscaConfig};
use esca_sscn::quant::{submanifold_conv3d_q, LayerQuant, QuantizedWeights};
use esca_sscn::weights::ConvWeights;
use esca_tensor::{Coord3, Extent3, SparseTensor, Q16};
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/layer_vector.json")
}

/// The fully-specified fixture workload (all values deterministic).
fn workload() -> (SparseTensor<Q16>, QuantizedWeights) {
    let mut t = SparseTensor::<Q16>::new(Extent3::cube(10), 2);
    let sites = [
        (1, 1, 1, 100, -50),
        (1, 1, 2, 25, 75),
        (2, 1, 1, -128, 4),
        (5, 5, 5, 1000, -1000),
        (5, 5, 6, 1, 1),
        (9, 9, 9, 32000, -32000),
    ];
    for (x, y, z, a, b) in sites {
        t.insert(Coord3::new(x, y, z), &[Q16(a), Q16(b)]).unwrap();
    }
    t.canonicalize();
    let w = ConvWeights::seeded(3, 2, 4, 0xF1);
    let qw = QuantizedWeights::from_float(&w, LayerQuant::uniform(8, 6).unwrap());
    (t, qw)
}

/// Serializable form of the expected output.
fn output_entries(out: &SparseTensor<Q16>) -> Vec<((i32, i32, i32), Vec<i16>)> {
    out.iter()
        .map(|(c, f)| ((c.x, c.y, c.z), f.iter().map(|q| q.0).collect()))
        .collect()
}

#[test]
fn accelerator_matches_committed_vector() {
    let (input, qw) = workload();
    let run = Esca::new(EscaConfig::default())
        .unwrap()
        .run_layer(&input, &qw, true)
        .unwrap();
    let expected: Vec<((i32, i32, i32), Vec<i16>)> = serde_json::from_str(
        &std::fs::read_to_string(fixture_path())
            .expect("fixture missing — run the ignored `regenerate` test once and commit the file"),
    )
    .expect("fixture parses");
    assert_eq!(
        output_entries(&run.output),
        expected,
        "accelerator output drifted from the committed vector"
    );
    // And the golden model agrees with the same committed data.
    let golden = submanifold_conv3d_q(&input, &qw, true).unwrap();
    assert_eq!(output_entries(&golden), expected);
}

#[test]
#[ignore = "writes the fixture; run once after an intentional semantic change"]
fn regenerate() {
    let (input, qw) = workload();
    let golden = submanifold_conv3d_q(&input, &qw, true).unwrap();
    let json = serde_json::to_string_pretty(&output_entries(&golden)).unwrap();
    std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
    std::fs::write(fixture_path(), json).unwrap();
}
