//! A hand-traced reproduction of the paper's Fig. 7(a) matching-steps
//! example, extended to the 3-D kernel. Every `(A, B)` value and address
//! fragment below is computed by hand in the comments and asserted
//! against the machinery — the SDMU's arithmetic must reproduce the
//! worked example exactly.
//!
//! Setup: one (x, y) line with occupancy along z (K = 3):
//!
//! ```text
//! z:        0  1  2  3  4  5  6  7
//! mask:     0  1  1  0  0  1  0  1
//! entries:     e0 e1       e2    e3     (line-local addresses 1..4)
//! ```
//!
//! Sliding the SRF centre over z, the centre column's (A, B) and fragment
//! (A−B, A] evolve as:
//!
//! | centre z | window [z−1, z+1] | A (≤ z+1) | B | fragment |
//! |---|---|---|---|---|
//! | 0 | {−1, 0, 1}  | 1 | 1 | (0, 1] → e0       |
//! | 1 | {0, 1, 2}   | 2 | 2 | (0, 2] → e0, e1   |
//! | 2 | {1, 2, 3}   | 2 | 2 | (0, 2] → e0, e1   |
//! | 3 | {2, 3, 4}   | 2 | 1 | (1, 2] → e1       |
//! | 4 | {3, 4, 5}   | 3 | 1 | (2, 3] → e2       |
//! | 5 | {4, 5, 6}   | 3 | 1 | (2, 3] → e2       |
//! | 6 | {5, 6, 7}   | 4 | 2 | (2, 4] → e2, e3   |
//! | 7 | {6, 7, 8}   | 4 | 1 | (3, 4] → e3       |

use esca_tensor::{Coord3, Extent3, LineCsr, SparseTensor, Q16};

const OCC: [i32; 4] = [1, 2, 5, 7]; // z of e0..e3

fn line_tensor() -> SparseTensor<Q16> {
    let mut t = SparseTensor::<Q16>::new(Extent3::new(4, 4, 8), 1);
    for (i, &z) in OCC.iter().enumerate() {
        t.insert(Coord3::new(1, 1, z), &[Q16(i as i16 + 10)])
            .unwrap();
    }
    t.canonicalize();
    t
}

#[test]
fn line_csr_reproduces_the_worked_table() {
    let csr = LineCsr::from_sparse(&line_tensor());
    // (centre z, expected A, expected B, expected fragment start..end)
    let expected = [
        (0, 1, 1, 0..1),
        (1, 2, 2, 0..2),
        (2, 2, 2, 0..2),
        (3, 2, 1, 1..2),
        (4, 3, 1, 2..3),
        (5, 3, 1, 2..3),
        (6, 4, 2, 2..4),
        (7, 4, 1, 3..4),
    ];
    for (z, a, b, frag) in expected {
        let w = csr.window(1, 1, z - 1, z + 2);
        assert_eq!(w.a_index(), a, "A at centre z={z}");
        assert_eq!(w.len(), b, "B at centre z={z}");
        assert_eq!(w.global_range(), frag, "fragment at centre z={z}");
    }
}

#[test]
fn state_index_accumulator_reproduces_the_worked_table() {
    use esca::sdmu::state_index::ColumnState;
    let occupied = |z: i32| OCC.contains(&z);
    let mut cs = ColumnState::default();
    // Preload for the line start at z = 0: A counts entries ≤ z + r − 1
    // = 0 (none ≤ 0), leading edge none.
    cs.preload(0, 0);
    let expected_ab = [
        (1, 1),
        (2, 2),
        (2, 2),
        (2, 1),
        (3, 1),
        (3, 1),
        (4, 2),
        (4, 1),
    ];
    for (z, (ea, eb)) in (0..8).zip(expected_ab) {
        cs.step(occupied(z + 1), occupied(z - 2));
        assert_eq!(cs.a(), ea, "Acc A at centre z={z}");
        assert_eq!(cs.b(), eb, "B at centre z={z}");
        assert_eq!(cs.fragment(), (ea - eb)..ea, "fragment at centre z={z}");
    }
}

#[test]
fn matching_fetches_exactly_the_fragments() {
    // End-to-end through the accelerator on the same line: each active
    // centre's match group must contain exactly the B entries of its
    // fragment (for the centre column; the other 8 columns are empty
    // here), and the outputs must be the golden results.
    use esca::{Esca, EscaConfig};
    use esca_sscn::quant::{submanifold_conv3d_q, QuantizedWeights};
    use esca_sscn::weights::ConvWeights;

    let t = line_tensor();
    let w = ConvWeights::seeded(3, 1, 4, 7);
    let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
    let run = Esca::new(EscaConfig::default())
        .unwrap()
        .run_layer(&t, &qw, false)
        .unwrap();
    // Per the table: active centres are z ∈ {1, 2, 5, 7} with B = 2, 2,
    // 1, 1 matches respectively → 6 matches total.
    assert_eq!(run.stats.match_groups, 4);
    assert_eq!(run.stats.matches, 6);
    let golden = submanifold_conv3d_q(&t, &qw, false).unwrap();
    assert!(run.output.same_content(&golden));
}
