//! Cross-validation of the two matching formulations: the hardware SDMU
//! (per-tile mask scan + (A, B) addressing) and the software rulebook
//! (per-tap gather lists) must discover exactly the same matches — they
//! are the same mathematical object built two different ways.

use esca::{Esca, EscaConfig};
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
use esca_sscn::rulebook::Rulebook;
use esca_sscn::weights::ConvWeights;
use esca_tensor::{Coord3, Extent3, QuantParams, SparseTensor, TileShape};
use proptest::prelude::*;

fn input_strategy() -> impl Strategy<Value = SparseTensor<f32>> {
    (6u32..16).prop_flat_map(|side| {
        let coord = (0..side as i32, 0..side as i32, 0..side as i32)
            .prop_map(|(x, y, z)| Coord3::new(x, y, z));
        proptest::collection::vec((coord, 0.1f32..2.0), 1..50).prop_map(move |entries| {
            let mut t = SparseTensor::new(Extent3::cube(side), 1);
            for (c, v) in entries {
                t.insert(c, &[v]).unwrap();
            }
            t.canonicalize();
            t
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// SDMU match count == rulebook match count == ops counter, for any
    /// input and tile size.
    #[test]
    fn sdmu_and_rulebook_count_identically(
        t in input_strategy(),
        tile_side in prop::sample::select(vec![2u32, 4, 8]),
    ) {
        let rb = Rulebook::build(&t, 3);
        let qin = quantize_tensor(&t, QuantParams::new(8).unwrap());
        let w = ConvWeights::seeded(3, 1, 4, 1);
        let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
        let mut cfg = EscaConfig::default();
        cfg.tile = TileShape::cube(tile_side);
        let run = Esca::new(cfg).unwrap().run_layer(&qin, &qw, false).unwrap();
        prop_assert_eq!(run.stats.matches, rb.total_matches());
        prop_assert_eq!(run.stats.matches, esca_sscn::ops::count_matches(&t, 3));
    }

    /// Per-tap structure: the rulebook's tap populations sum to the SDMU's
    /// per-group totals (each group contributes one pair per tap hit).
    #[test]
    fn per_site_match_counts_agree(t in input_strategy()) {
        let rb = Rulebook::build(&t, 3);
        // Per-output-site counts from the rulebook.
        let mut per_site = vec![0u64; t.nnz()];
        for tap in 0..27 {
            for &o in &rb.tap(tap).output {
                per_site[o as usize] += 1;
            }
        }
        // Golden per-site count from geometry.
        for (i, (centre, _)) in t.iter().enumerate() {
            let expect = esca_sscn::conv::match_group(&t, 3, centre).len() as u64;
            prop_assert_eq!(per_site[i], expect);
        }
    }
}

#[test]
fn three_way_bit_exact_cross_validation() {
    // Golden direct kernel, quantized rulebook, and the accelerator
    // datapath: three independent implementations, one integer function.
    use esca_sscn::quant::{quantize_tensor, submanifold_conv3d_q, QuantizedWeights};
    use esca_sscn::rulebook::apply_rulebook_q;
    use esca_sscn::weights::ConvWeights;

    for seed in 0..4u64 {
        let mut t = SparseTensor::<f32>::new(Extent3::cube(12), 3);
        for i in 0..40i32 {
            let c = Coord3::new((i * 7 + seed as i32) % 12, (i * 3) % 12, (i * 5) % 12);
            t.insert(c, &[0.1 * i as f32, -0.05 * i as f32, 0.2])
                .unwrap();
        }
        t.canonicalize();
        let w = ConvWeights::seeded(3, 3, 8, seed + 90);
        let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
        let qin = quantize_tensor(&t, qw.quant().act);

        let golden = submanifold_conv3d_q(&qin, &qw, true).unwrap();
        let rb = esca_sscn::rulebook::Rulebook::build(&qin, 3);
        let via_rb = apply_rulebook_q(&qin, &rb, &qw, true).unwrap();
        let via_esca = Esca::new(EscaConfig::default())
            .unwrap()
            .run_layer(&qin, &qw, true)
            .unwrap()
            .output;

        assert!(
            golden.same_content(&via_rb),
            "rulebook diverged at seed {seed}"
        );
        assert!(
            golden.same_content(&via_esca),
            "accelerator diverged at seed {seed}"
        );
    }
}
