//! Invariants of the recorded pipeline trace: the Fig. 7(b) structure must
//! hold for every traced run — stages appear in causal order, compute
//! spans match the dispatched match count, and every match group drains
//! exactly once. Per-work-item details (one per match, group or SRF) keep
//! span counts 1:1 with the work items even though contiguous same-detail
//! cycles coalesce.

use esca::trace::Stage;
use esca::{Esca, EscaConfig};
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
use esca_sscn::weights::ConvWeights;
use esca_tensor::{Coord3, Extent3, QuantParams, SparseTensor, TileShape};

fn traced_run() -> esca::LayerRun {
    let mut t = SparseTensor::<f32>::new(Extent3::cube(8), 1);
    for (i, c) in [
        Coord3::new(1, 1, 1),
        Coord3::new(1, 1, 2),
        Coord3::new(2, 2, 2),
        Coord3::new(5, 5, 5),
        Coord3::new(6, 5, 5),
    ]
    .into_iter()
    .enumerate()
    {
        t.insert(c, &[0.2 * (i as f32 + 1.0)]).unwrap();
    }
    let qin = quantize_tensor(&t, QuantParams::new(8).unwrap());
    let qw = QuantizedWeights::auto(&ConvWeights::seeded(3, 1, 8, 5), 8, 10).unwrap();
    let mut cfg = EscaConfig::default();
    cfg.tile = TileShape::cube(4);
    cfg.record_trace = true;
    Esca::new(cfg).unwrap().run_layer(&qin, &qw, false).unwrap()
}

#[test]
fn compute_spans_equal_matches() {
    let run = traced_run();
    let computes = run
        .trace
        .spans()
        .iter()
        .filter(|s| s.stage == Stage::Compute)
        .count() as u64;
    assert_eq!(computes, run.stats.matches);
}

#[test]
fn one_drain_per_match_group() {
    let run = traced_run();
    let drains = run
        .trace
        .spans()
        .iter()
        .filter(|s| s.stage == Stage::Drain)
        .count() as u64;
    assert_eq!(drains, run.stats.match_groups);
}

#[test]
fn state_index_only_for_active_srfs() {
    let run = traced_run();
    let gens = run
        .trace
        .spans()
        .iter()
        .filter(|s| s.stage == Stage::GenStateIndex)
        .count() as u64;
    assert_eq!(gens, run.stats.match_groups);
}

#[test]
fn causal_ordering_within_each_group() {
    // For every match group g: its first fetch is not before its state
    // index, its first compute not before its first fetch, and its drain
    // not before its last compute (per-tile cycle counters restart at 0,
    // so compare within the same group's spans only).
    let run = traced_run();
    let spans = run.trace.spans();
    for g in 0..run.stats.match_groups {
        let label = format!("group {g}");
        let first = |stage: Stage| {
            spans
                .iter()
                .filter(|s| s.stage == stage && s.detail.contains(&label))
                .map(|s| s.cycle_start)
                .min()
        };
        let last_compute = spans
            .iter()
            .filter(|s| s.stage == Stage::Compute && s.detail.contains(&format!("g{g} ")))
            .map(|s| s.cycle_start)
            .max();
        if let (Some(fetch), Some(drain)) = (first(Stage::FetchActivations), first(Stage::Drain)) {
            assert!(fetch <= drain, "group {g}: fetch after drain");
        }
        if let (Some(compute), Some(drain)) = (last_compute, first(Stage::Drain)) {
            assert!(compute <= drain, "group {g}: compute after drain");
        }
    }
}

#[test]
fn trace_off_by_default_costs_nothing() {
    let mut t = SparseTensor::<f32>::new(Extent3::cube(8), 1);
    t.insert(Coord3::new(1, 1, 1), &[1.0]).unwrap();
    let qin = quantize_tensor(&t, QuantParams::new(8).unwrap());
    let qw = QuantizedWeights::auto(&ConvWeights::seeded(3, 1, 4, 6), 8, 10).unwrap();
    let run = Esca::new(EscaConfig::default())
        .unwrap()
        .run_layer(&qin, &qw, false)
        .unwrap();
    assert!(run.trace.spans().is_empty());
    assert!(!run.trace.enabled());
}
