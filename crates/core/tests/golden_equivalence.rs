//! Property-based validation of the central claim of this model: for ANY
//! input, configuration and layer shape, the accelerator's datapath
//! (zero removing → encoding → SDMU matching → computing core) produces
//! output **bit-identical** to the golden quantized submanifold
//! convolution — while its cycle accounting stays self-consistent.

use esca::{Esca, EscaConfig};
use esca_sscn::quant::{quantize_tensor, submanifold_conv3d_q, QuantizedWeights};
use esca_sscn::weights::ConvWeights;
use esca_tensor::{Coord3, Extent3, QuantParams, SparseTensor, TileShape, Q16};
use proptest::prelude::*;

fn q_input() -> impl Strategy<Value = SparseTensor<Q16>> {
    (6u32..20, 1usize..4).prop_flat_map(|(side, ch)| {
        let coord = (0..side as i32, 0..side as i32, 0..side as i32)
            .prop_map(|(x, y, z)| Coord3::new(x, y, z));
        proptest::collection::vec(
            (coord, proptest::collection::vec(-2.0f32..2.0, ch..=ch)),
            0..60,
        )
        .prop_map(move |entries| {
            let mut t = SparseTensor::<f32>::new(Extent3::cube(side), ch);
            for (c, f) in entries {
                t.insert(c, &f).unwrap();
            }
            t.canonicalize();
            quantize_tensor(&t, QuantParams::new(8).unwrap())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn accelerator_equals_golden_bit_for_bit(
        qin in q_input(),
        seed in 0u64..10_000,
        out_ch in 1usize..24,
        relu in any::<bool>(),
        tile_side in prop::sample::select(vec![2u32, 4, 8]),
        fifo_depth in 1usize..24,
    ) {
        let w = ConvWeights::seeded(3, qin.channels(), out_ch, seed);
        let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
        let mut cfg = EscaConfig::default();
        cfg.tile = TileShape::cube(tile_side);
        cfg.fifo_depth = fifo_depth;
        let esca = Esca::new(cfg).unwrap();
        let run = esca.run_layer(&qin, &qw, relu).unwrap();
        let golden = submanifold_conv3d_q(&qin, &qw, relu).unwrap();
        prop_assert!(run.output.same_content(&golden), "datapath diverged from golden");
        // Submanifold property end to end.
        prop_assert!(run.output.same_active_set(&qin));
        // Statistics consistency.
        let s = &run.stats;
        prop_assert_eq!(s.match_groups, qin.nnz() as u64);
        let fin = qin.map(|q| q.0 as f32);
        prop_assert_eq!(s.matches, esca_sscn::ops::count_matches(&fin, 3));
        prop_assert_eq!(s.effective_macs,
            s.matches * qin.channels() as u64 * out_ch as u64);
        prop_assert_eq!(s.fifo_pushes, s.matches);
        prop_assert!(s.compute_busy_cycles <= s.pipeline_cycles);
        prop_assert!(s.peak_fifo_occupancy <= fifo_depth as u64);
    }

    /// Tile size never changes results, only timing (Fig. 3's invariance,
    /// end to end through the datapath).
    #[test]
    fn tile_size_is_result_invariant(qin in q_input(), seed in 0u64..10_000) {
        let w = ConvWeights::seeded(3, qin.channels(), 8, seed);
        let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
        let mut reference: Option<SparseTensor<Q16>> = None;
        for side in [2u32, 4, 8, 16] {
            let mut cfg = EscaConfig::default();
            cfg.tile = TileShape::cube(side);
            let run = Esca::new(cfg).unwrap().run_layer(&qin, &qw, false).unwrap();
            match &reference {
                None => reference = Some(run.output),
                Some(r) => prop_assert!(run.output.same_content(r),
                    "tile size {side} changed the output"),
            }
        }
    }

    /// Zero removing efficiency: pipeline cycles scale with the active
    /// tiles, not with the whole 192³-style grid (the strategy's point).
    #[test]
    fn cycles_track_active_volume_not_grid(seed in 0u64..1000) {
        // Same tiny cluster embedded in a small and in a large grid.
        let mut small = SparseTensor::<f32>::new(Extent3::cube(16), 1);
        let mut large = SparseTensor::<f32>::new(Extent3::cube(64), 1);
        for i in 0..5i32 {
            small.insert(Coord3::new(4 + i % 2, 4, 4 + i), &[1.0]).unwrap();
            large.insert(Coord3::new(4 + i % 2, 4, 4 + i), &[1.0]).unwrap();
        }
        let p = QuantParams::new(8).unwrap();
        let qs = quantize_tensor(&small, p);
        let ql = quantize_tensor(&large, p);
        let w = ConvWeights::seeded(3, 1, 16, seed);
        let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
        let esca = Esca::new(EscaConfig::default()).unwrap();
        let rs = esca.run_layer(&qs, &qw, false).unwrap();
        let rl = esca.run_layer(&ql, &qw, false).unwrap();
        // Identical active tiles => identical pipeline work.
        prop_assert_eq!(rs.stats.active_tiles, rl.stats.active_tiles);
        prop_assert_eq!(rs.stats.pipeline_cycles, rl.stats.pipeline_cycles);
        // The 64³ grid has 64x the tiles, all removed.
        prop_assert!(rl.stats.total_tiles > rs.stats.total_tiles);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The closed-form analytical model tracks the cycle simulator within
    /// a generous tolerance for arbitrary workloads — two independent
    /// derivations of the same microarchitecture.
    #[test]
    fn analytic_model_tracks_simulator(
        qin in q_input(),
        seed in 0u64..10_000,
        out_ch in prop::sample::select(vec![4usize, 16, 32]),
    ) {
        prop_assume!(qin.nnz() > 5);
        let cfg = EscaConfig::default();
        let w = ConvWeights::seeded(3, qin.channels(), out_ch, seed);
        let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
        let run = Esca::new(cfg).unwrap().run_layer(&qin, &qw, false).unwrap();
        let shape = esca::analytic::LayerShape::measure(&qin, &cfg, out_ch);
        let est = esca::analytic::estimate_layer(&shape, &cfg);
        let sim = run.stats.total_cycles() as f64;
        let ana = est.total_cycles() as f64;
        let rel = (ana - sim).abs() / sim;
        prop_assert!(rel < 0.35, "analytic {ana} vs sim {sim}: {:.1}% off", rel * 100.0);
    }
}
