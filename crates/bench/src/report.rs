//! Machine-readable experiment reports: every table binary also serializes
//! its structured results as JSON under `target/esca-reports/`, so
//! downstream tooling (plots, regression tracking) never has to scrape
//! stdout.

use serde::Serialize;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory the reports land in (relative to the workspace root).
pub const REPORT_DIR: &str = "target/esca-reports";

/// Serializes `value` as pretty JSON to `target/esca-reports/<name>.json`,
/// creating the directory if needed. Returns the written path.
///
/// # Errors
///
/// Propagates filesystem and serialization errors.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> io::Result<PathBuf> {
    let dir = Path::new(REPORT_DIR);
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(&path, json)?;
    Ok(path)
}

/// A serializable Table I row (mirrors `tables::Table1Measured` plus the
/// paper's reference values).
#[derive(Debug, Clone, Serialize)]
pub struct Table1Json {
    /// Dataset label.
    pub dataset: String,
    /// Cubic tile side.
    pub tile: u32,
    /// Measured mean active tiles.
    pub active_measured: f64,
    /// Paper's active tiles.
    pub active_paper: usize,
    /// Total tiles (identical to paper by construction).
    pub all_tiles: usize,
    /// Measured removing ratio.
    pub ratio_measured: f64,
    /// Paper's removing ratio.
    pub ratio_paper: f64,
}

/// A serializable platform comparison row (Table III / Fig. 10 summary).
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonJson {
    /// Platform label.
    pub device: String,
    /// Average power in watts.
    pub power_w: f64,
    /// Effective GOPS.
    pub gops: f64,
    /// Power efficiency.
    pub gops_per_w: f64,
    /// Total modelled time over the workload, seconds.
    pub total_time_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_json_roundtrips() {
        let rows = vec![Table1Json {
            dataset: "test".into(),
            tile: 8,
            active_measured: 42.0,
            active_paper: 42,
            all_tiles: 13824,
            ratio_measured: 0.9969,
            ratio_paper: 0.9969,
        }];
        let path = write_json("unit_test_table1", &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("13824"));
        let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed[0]["tile"], 8);
        std::fs::remove_file(path).unwrap();
    }
}
