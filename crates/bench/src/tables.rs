//! Computation + formatting of the paper's tables from the simulator and
//! workload crates. Each `compute_*` function returns structured rows; each
//! `print_*` renders them alongside the paper's reported values.

use crate::paper;
use crate::workloads::{self, LayerWorkload};
use esca::area::ResourceEstimate;
use esca::power::PowerModel;
use esca::{CycleStats, Esca, EscaConfig};
use esca_baselines::report::PlatformPoint;
use esca_baselines::{literature, CpuModel, GpuModel};
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
use esca_tensor::{SparseTensor, TileGrid, TileShape};

/// The tile sides evaluated in Table I.
pub const TABLE1_TILE_SIDES: [u32; 4] = [4, 8, 12, 16];

/// A measured Table I row (averaged over the evaluation seeds).
#[derive(Debug, Clone, Copy)]
pub struct Table1Measured {
    /// Cubic tile side.
    pub tile: u32,
    /// Mean active tiles over the evaluation samples.
    pub active: f64,
    /// Total tiles at this size on the 192³ grid.
    pub all: usize,
    /// Mean removing ratio.
    pub ratio: f64,
}

/// Classifies one voxelized sample at every Table I tile size.
pub fn table1_rows_for(t: &SparseTensor<f32>) -> Vec<Table1Measured> {
    TABLE1_TILE_SIDES
        .iter()
        .map(|&side| {
            let grid = TileGrid::new(t.extent(), TileShape::cube(side));
            let report = grid.classify(&t.occupancy_mask());
            Table1Measured {
                tile: side,
                active: report.active_tiles() as f64,
                all: report.total_tiles(),
                ratio: report.removing_ratio(),
            }
        })
        .collect()
}

/// Averages Table I rows across the canonical evaluation seeds for one
/// dataset generator.
pub fn table1_mean<F: Fn(u64) -> SparseTensor<f32>>(gen: F) -> Vec<Table1Measured> {
    let mut acc: Vec<Table1Measured> = TABLE1_TILE_SIDES
        .iter()
        .map(|&tile| Table1Measured {
            tile,
            active: 0.0,
            all: 0,
            ratio: 0.0,
        })
        .collect();
    let n = workloads::EVAL_SEEDS.len() as f64;
    for &seed in &workloads::EVAL_SEEDS {
        let t = gen(seed);
        for (dst, row) in acc.iter_mut().zip(table1_rows_for(&t)) {
            dst.active += row.active / n;
            dst.all = row.all;
            dst.ratio += row.ratio / n;
        }
    }
    acc
}

/// Prints one dataset block of Table I with paper references.
pub fn print_table1_block(name: &str, measured: &[Table1Measured], paper: &[paper::Table1Row]) {
    println!("== Table I — zero removing analysis — {name} ==");
    println!(
        "{:>10} | {:>13} | {:>9} | {:>16} | {:>14}",
        "Tile Size", "Active Tiles", "All Tiles", "Removing Ratio", "paper (act/rt)"
    );
    for (m, p) in measured.iter().zip(paper) {
        println!(
            "{:>7}³   | {:>13.1} | {:>9} | {:>15.2}% | {:>6} / {:>5.2}%",
            m.tile,
            m.active,
            m.all,
            m.ratio * 100.0,
            p.active,
            p.ratio * 100.0
        );
    }
    println!();
}

// ---------------------------------------------------------------------
// Table II — resources
// ---------------------------------------------------------------------

/// Prints the regenerated Table II next to the paper's report.
pub fn print_table2(cfg: &EscaConfig) {
    let est = ResourceEstimate::for_config(cfg);
    let (lut_u, ff_u, bram_u, dsp_u) = est.utilization();
    let p = paper::TABLE2;
    println!("== Table II — FPGA frequency and resource utilization ==");
    println!("{:>12} | {:>16} | {:>16}", "", "measured (model)", "paper");
    println!(
        "{:>12} | {:>16} | {:>16}",
        "Freq (MHz)", cfg.clock_mhz, p.freq_mhz
    );
    println!(
        "{:>12} | {:>7} ({:>5.2}%) | {:>7} ({:>5.2}%)",
        "LUT",
        est.lut,
        lut_u * 100.0,
        p.lut,
        p.lut as f64 / paper::ZCU102_LUT_TOTAL as f64 * 100.0
    );
    println!(
        "{:>12} | {:>7} ({:>5.2}%) | {:>7} ({:>5.2}%)",
        "FF",
        est.ff,
        ff_u * 100.0,
        p.ff,
        p.ff as f64 / paper::ZCU102_FF_TOTAL as f64 * 100.0
    );
    println!(
        "{:>12} | {:>7} ({:>5.2}%) | {:>7} ({:>5.2}%)",
        "BRAM",
        est.bram36,
        bram_u * 100.0,
        p.bram,
        p.bram / paper::ZCU102_BRAM_TOTAL * 100.0
    );
    println!(
        "{:>12} | {:>7} ({:>5.2}%) | {:>7} ({:>5.2}%)",
        "DSP",
        est.dsp,
        dsp_u * 100.0,
        p.dsp,
        p.dsp as f64 / paper::ZCU102_DSP_TOTAL as f64 * 100.0
    );
    println!();
}

// ---------------------------------------------------------------------
// Table III + Fig. 10 — platform comparison on the SS U-Net workload
// ---------------------------------------------------------------------

/// Per-layer times on the three platforms (the data behind Fig. 10).
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Layer name.
    pub name: String,
    /// Effective operations of the layer.
    pub effective_ops: u64,
    /// CPU model time, seconds.
    pub cpu_s: f64,
    /// GPU model time, seconds.
    pub gpu_s: f64,
    /// ESCA cycle-model time, seconds.
    pub esca_s: f64,
}

/// Full comparison computed over the SS U-Net Sub-Conv workload.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Per-layer rows in network order.
    pub rows: Vec<Fig10Row>,
    /// Aggregate ESCA statistics (all layers).
    pub esca_total: CycleStats,
    /// The ESCA Table III column (power from the energy model).
    pub esca_point: PlatformPoint,
    /// The GPU Table III column.
    pub gpu_point: PlatformPoint,
    /// CPU totals (time-only in the paper; power is the package figure).
    pub cpu_point: PlatformPoint,
}

impl Comparison {
    /// Mean per-layer speedup of ESCA over the CPU (paper: ≈ 8.41×).
    pub fn speedup_vs_cpu(&self) -> f64 {
        total(&self.rows, |r| r.cpu_s) / total(&self.rows, |r| r.esca_s)
    }

    /// Mean per-layer speedup of ESCA over the GPU (paper: ≈ 1.89×).
    pub fn speedup_vs_gpu(&self) -> f64 {
        total(&self.rows, |r| r.gpu_s) / total(&self.rows, |r| r.esca_s)
    }
}

fn total(rows: &[Fig10Row], f: impl Fn(&Fig10Row) -> f64) -> f64 {
    rows.iter().map(f).sum()
}

/// Replays every Sub-Conv layer of the SS U-Net on all three platforms.
pub fn compare_platforms(seed: u64, cfg: &EscaConfig) -> Comparison {
    let esca = Esca::new(*cfg).expect("valid config");
    let cpu = CpuModel::default();
    let gpu = GpuModel::default();
    let layers = workloads::unet_subconv_workload(seed);

    let mut rows = Vec::with_capacity(layers.len());
    let mut esca_total = CycleStats::default();
    for LayerWorkload {
        name,
        input,
        weights,
    } in &layers
    {
        let qw = QuantizedWeights::auto(weights, 8, 12).expect("valid quantization");
        let qin = quantize_tensor(input, qw.quant().act);
        let run = esca
            .run_layer(&qin, &qw, true)
            .expect("layer fits the buffers");
        let cpu_run = cpu.run_layer(input, weights).expect("channels match");
        let gpu_run = gpu.run_layer(input, weights).expect("channels match");
        debug_assert_eq!(run.stats.effective_ops(), cpu_run.effective_ops);
        rows.push(Fig10Row {
            name: name.clone(),
            effective_ops: run.stats.effective_ops(),
            cpu_s: cpu_run.time_s,
            gpu_s: gpu_run.time_s,
            esca_s: run.stats.time_s(cfg.clock_mhz),
        });
        esca_total += &run.stats;
    }

    let power = PowerModel::default().report(&esca_total, cfg);
    let total_ops: u64 = rows.iter().map(|r| r.effective_ops).sum();
    let esca_point = PlatformPoint {
        device: "Zynq ZCU102 (ours, simulated)".into(),
        freq_mhz: Some(cfg.clock_mhz as u32),
        model: "SS U-Net".into(),
        precision: "INT8/INT16".into(),
        power_w: power.avg_power_w,
        gops: power.gops,
    };
    let gpu_point = PlatformPoint {
        device: "Tesla P100 (model)".into(),
        freq_mhz: None,
        model: "SS U-Net".into(),
        precision: "FP32".into(),
        power_w: gpu.power_w,
        gops: total_ops as f64 / total(&rows, |r| r.gpu_s) / 1e9,
    };
    let cpu_point = PlatformPoint {
        device: "Xeon Gold 6148 (model)".into(),
        freq_mhz: None,
        model: "SS U-Net".into(),
        precision: "FP32".into(),
        power_w: cpu.power_w,
        gops: total_ops as f64 / total(&rows, |r| r.cpu_s) / 1e9,
    };
    Comparison {
        rows,
        esca_total,
        esca_point,
        gpu_point,
        cpu_point,
    }
}

/// Mean and sample standard deviation of a slice.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Multi-seed aggregate of the platform comparison: mean ± std of the
/// headline metrics over several evaluation samples.
#[derive(Debug, Clone)]
pub struct MultiSeedSummary {
    /// Seeds evaluated.
    pub seeds: Vec<u64>,
    /// (mean, std) of ESCA effective GOPS.
    pub esca_gops: (f64, f64),
    /// (mean, std) of the speedup over the CPU model.
    pub speedup_cpu: (f64, f64),
    /// (mean, std) of the speedup over the GPU model.
    pub speedup_gpu: (f64, f64),
    /// (mean, std) of the power-efficiency gain over the GPU.
    pub efficiency_gain: (f64, f64),
}

/// Runs [`compare_platforms`] over several seeds and aggregates.
pub fn compare_platforms_multi(seeds: &[u64], cfg: &EscaConfig) -> MultiSeedSummary {
    let mut gops = Vec::new();
    let mut s_cpu = Vec::new();
    let mut s_gpu = Vec::new();
    let mut eff = Vec::new();
    for &seed in seeds {
        let c = compare_platforms(seed, cfg);
        gops.push(c.esca_point.gops);
        s_cpu.push(c.speedup_vs_cpu());
        s_gpu.push(c.speedup_vs_gpu());
        eff.push(c.esca_point.gops_per_w() / c.gpu_point.gops_per_w());
    }
    MultiSeedSummary {
        seeds: seeds.to_vec(),
        esca_gops: mean_std(&gops),
        speedup_cpu: mean_std(&s_cpu),
        speedup_gpu: mean_std(&s_gpu),
        efficiency_gain: mean_std(&eff),
    }
}

/// Prints the multi-seed summary.
pub fn print_multi_seed(m: &MultiSeedSummary) {
    println!("== multi-seed stability ({} samples) ==", m.seeds.len());
    println!(
        "ESCA GOPS        {:.2} ± {:.2}   (paper 17.73)",
        m.esca_gops.0, m.esca_gops.1
    );
    println!(
        "speedup vs CPU   {:.2} ± {:.2}   (paper ≈8.41)",
        m.speedup_cpu.0, m.speedup_cpu.1
    );
    println!(
        "speedup vs GPU   {:.2} ± {:.2}   (paper ≈1.89)",
        m.speedup_gpu.0, m.speedup_gpu.1
    );
    println!(
        "GOPS/W vs GPU    {:.1} ± {:.1}    (paper ≈51)",
        m.efficiency_gain.0, m.efficiency_gain.1
    );
    println!();
}

/// Prints the regenerated Table III next to the paper's values.
pub fn print_table3(c: &Comparison) {
    println!("== Table III — comparison with other implementations ==");
    println!(
        "{:<30} {:>10} {:>12} {:>11} {:>9} {:>9} {:>9}",
        "Device", "Freq(MHz)", "Model", "Precision", "Power(W)", "GOPS", "GOPS/W"
    );
    let r19 = literature::ref19();
    for p in [&c.gpu_point, &r19, &c.esca_point] {
        println!(
            "{:<30} {:>10} {:>12} {:>11} {:>9.2} {:>9.2} {:>9.2}",
            p.device,
            p.freq_mhz
                .map(|f| f.to_string())
                .unwrap_or_else(|| "-".into()),
            p.model,
            p.precision,
            p.power_w,
            p.gops,
            p.gops_per_w()
        );
    }
    println!(
        "paper reference:  GPU {:.2} GOPS / {:.2} GOPS/W | [19] {:.2} / {:.2} | ESCA {:.2} / {:.2}",
        paper::TABLE3_GPU.gops,
        paper::TABLE3_GPU.gops_per_w,
        paper::TABLE3_REF19.gops,
        paper::TABLE3_REF19.gops_per_w,
        paper::TABLE3_ESCA.gops,
        paper::TABLE3_ESCA.gops_per_w
    );
    println!(
        "efficiency gain vs GPU: {:.1}x (paper: {:.0}x)",
        c.esca_point.gops_per_w() / c.gpu_point.gops_per_w(),
        paper::TABLE3_ESCA.gops_per_w / paper::TABLE3_GPU.gops_per_w
    );
    println!();
}

/// Prints the regenerated Fig. 10 (per-layer time, CPU vs GPU vs ESCA).
pub fn print_fig10(c: &Comparison) {
    println!("== Fig. 10 — time per Sub-Conv layer (ms) ==");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>14}",
        "layer", "CPU", "GPU", "ESCA", "ops (M)"
    );
    for r in &c.rows {
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3} {:>14.2}",
            r.name,
            r.cpu_s * 1e3,
            r.gpu_s * 1e3,
            r.esca_s * 1e3,
            r.effective_ops as f64 / 1e6
        );
    }
    println!(
        "speedup: vs CPU {:.2}x (paper {:.2}x), vs GPU {:.2}x (paper {:.2}x)",
        c.speedup_vs_cpu(),
        paper::FIG10_SPEEDUP_VS_CPU,
        c.speedup_vs_gpu(),
        paper::FIG10_SPEEDUP_VS_GPU
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_total_tile_counts_match_paper() {
        let t = workloads::shapenet_voxelized(workloads::EVAL_SEEDS[0]);
        let rows = table1_rows_for(&t);
        let expect_all = [110_592, 13_824, 4_096, 1_728];
        for (row, all) in rows.iter().zip(expect_all) {
            assert_eq!(row.all, all);
        }
    }

    #[test]
    fn removing_ratio_decreases_with_tile_size() {
        let t = workloads::shapenet_voxelized(workloads::EVAL_SEEDS[1]);
        let rows = table1_rows_for(&t);
        for w in rows.windows(2) {
            assert!(w[0].ratio >= w[1].ratio);
        }
    }
}
