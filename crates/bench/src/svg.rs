//! Minimal SVG chart rendering — regenerates the paper's Fig. 10 as an
//! actual figure (grouped bar chart of per-layer times), without any
//! plotting dependency.
//!
//! The output is deliberately simple, self-contained SVG 1.1: one group of
//! three bars (CPU / GPU / ESCA) per Sub-Conv layer, log-free linear
//! scale, embedded axis labels and legend.

use crate::tables::Fig10Row;
use std::fmt::Write as _;

/// Series colors (CPU, GPU, ESCA) — color-blind-safe trio.
const COLORS: [&str; 3] = ["#D55E00", "#0072B2", "#009E73"];
const SERIES: [&str; 3] = ["CPU (Xeon 6148)", "GPU (P100)", "ESCA (ZCU102)"];

/// Renders Fig. 10 as an SVG document string.
///
/// Layout constants are internal; the caller only supplies the rows.
pub fn render_fig10(rows: &[Fig10Row]) -> String {
    let margin_l = 70.0;
    let margin_b = 90.0;
    let margin_t = 50.0;
    let bar_w = 14.0;
    let group_gap = 18.0;
    let group_w = 3.0 * bar_w + group_gap;
    let plot_h = 280.0;
    let width = margin_l + rows.len() as f64 * group_w + 180.0;
    let height = margin_t + plot_h + margin_b;

    let max_ms = rows
        .iter()
        .map(|r| r.cpu_s.max(r.gpu_s).max(r.esca_s) * 1e3)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let y = |ms: f64| margin_t + plot_h - ms / max_ms * plot_h;

    let mut s = String::new();
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}" font-family="sans-serif" font-size="11">"#
    );
    let _ = write!(
        s,
        r#"<text x="{:.0}" y="20" font-size="14" font-weight="bold">Fig. 10 — time per Sub-Conv layer (ms)</text>"#,
        margin_l
    );

    // Y axis + gridlines at quarters.
    for i in 0..=4 {
        let v = max_ms * i as f64 / 4.0;
        let yy = y(v);
        let _ = write!(
            s,
            r##"<line x1="{margin_l:.1}" y1="{yy:.1}" x2="{:.1}" y2="{yy:.1}" stroke="#ddd"/>"##,
            margin_l + rows.len() as f64 * group_w
        );
        let _ = write!(
            s,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{v:.1}</text>"#,
            margin_l - 6.0,
            yy + 4.0
        );
    }

    // Bars.
    for (gi, r) in rows.iter().enumerate() {
        let gx = margin_l + gi as f64 * group_w + group_gap / 2.0;
        for (si, ms) in [r.cpu_s * 1e3, r.gpu_s * 1e3, r.esca_s * 1e3]
            .into_iter()
            .enumerate()
        {
            let x = gx + si as f64 * bar_w;
            let yy = y(ms);
            let h = margin_t + plot_h - yy;
            let _ = write!(
                s,
                r#"<rect x="{x:.1}" y="{yy:.1}" width="{:.1}" height="{h:.1}" fill="{}"/>"#,
                bar_w - 2.0,
                COLORS[si]
            );
        }
        // Rotated layer label.
        let lx = gx + 1.5 * bar_w;
        let ly = margin_t + plot_h + 12.0;
        let _ = write!(
            s,
            r#"<text x="{lx:.1}" y="{ly:.1}" transform="rotate(45 {lx:.1} {ly:.1})">{}</text>"#,
            r.name
        );
    }

    // Legend.
    let lx = margin_l + rows.len() as f64 * group_w + 16.0;
    for (si, name) in SERIES.iter().enumerate() {
        let ly = margin_t + 20.0 + si as f64 * 20.0;
        let _ = write!(
            s,
            r#"<rect x="{lx:.1}" y="{:.1}" width="12" height="12" fill="{}"/><text x="{:.1}" y="{:.1}">{name}</text>"#,
            ly - 10.0,
            COLORS[si],
            lx + 18.0,
            ly
        );
    }
    s.push_str("</svg>");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Fig10Row> {
        vec![
            Fig10Row {
                name: "stem".into(),
                effective_ops: 1,
                cpu_s: 5e-3,
                gpu_s: 1e-3,
                esca_s: 0.5e-3,
            },
            Fig10Row {
                name: "enc0.conv0".into(),
                effective_ops: 1,
                cpu_s: 6e-3,
                gpu_s: 2e-3,
                esca_s: 1e-3,
            },
        ]
    }

    #[test]
    fn renders_wellformed_svg_with_all_series() {
        let svg = render_fig10(&rows());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // One rect per bar per layer + 3 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 2 * 3 + 3);
        for name in SERIES {
            assert!(svg.contains(name));
        }
        assert!(svg.contains("stem"));
        assert!(svg.contains("enc0.conv0"));
    }

    #[test]
    fn empty_rows_render_degenerate_but_valid() {
        let svg = render_fig10(&[]);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
    }

    #[test]
    fn bar_heights_track_values() {
        let svg = render_fig10(&rows());
        // The tallest bar (cpu of layer 2 at 6 ms == max) spans the full
        // plot height: its y equals the top margin (50).
        assert!(svg.contains(r#"y="50.0""#) || svg.contains(r#"y="50""#));
    }
}
