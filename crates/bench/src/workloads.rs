//! Canonical evaluation workloads: the fixed seeds and configurations every
//! table/figure binary and bench uses, so all results refer to the same
//! inputs.

use esca_pointcloud::{synthetic, voxelize};
use esca_sscn::unet::{SsUNet, UNetConfig};
use esca_sscn::weights::ConvWeights;
use esca_tensor::{Extent3, SparseTensor};

/// The paper's grid: feature maps normalized to 192³ (§IV-B).
pub const GRID_SIDE: u32 = 192;

/// Seeds of the evaluation samples (averaged over in Table I).
pub const EVAL_SEEDS: [u64; 8] = [11, 23, 37, 41, 53, 67, 79, 97];

/// The 192³ evaluation grid.
pub fn grid() -> Extent3 {
    Extent3::cube(GRID_SIDE)
}

/// A ShapeNet-like sample voxelized to the evaluation grid (single
/// occupancy channel).
pub fn shapenet_voxelized(seed: u64) -> SparseTensor<f32> {
    let cloud = synthetic::shapenet_like(seed, &synthetic::ShapeNetConfig::default());
    voxelize::voxelize_occupancy(&cloud, grid())
}

/// An NYU-Depth-like sample voxelized to the evaluation grid.
pub fn nyu_voxelized(seed: u64) -> SparseTensor<f32> {
    let cloud = synthetic::nyu_like(seed, &synthetic::NyuConfig::default());
    voxelize::voxelize_occupancy(&cloud, grid())
}

/// The benchmark network: the paper's 3-D submanifold sparse U-Net
/// (kernel 3×3×3, deterministic seeded weights, BN folded).
pub fn unet() -> SsUNet {
    SsUNet::new(UNetConfig::default()).expect("default U-Net config is valid")
}

/// One Sub-Conv layer's workload: the exact tensor the network fed it plus
/// the layer's (float) weights — everything the platform models need.
#[derive(Debug, Clone)]
pub struct LayerWorkload {
    /// Layer name within the U-Net (e.g. `enc1.conv0`).
    pub name: String,
    /// The layer's input as the f32 network produced it.
    pub input: SparseTensor<f32>,
    /// The layer's folded float weights.
    pub weights: ConvWeights,
}

/// Runs the SS U-Net on a ShapeNet-like sample and captures every
/// Sub-Conv layer's input — the workload Table III and Fig. 10 replay on
/// every platform.
pub fn unet_subconv_workload(seed: u64) -> Vec<LayerWorkload> {
    let net = unet();
    let input = shapenet_voxelized(seed);
    let (_, traces) = net
        .forward_trace(&input)
        .expect("forward pass on a valid input");
    traces
        .into_iter()
        .map(|t| LayerWorkload {
            weights: net.subconv_layers()[t.index].1.clone(),
            name: t.name,
            input: t.input,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_in_the_papers_sparsity_regime() {
        let s = shapenet_voxelized(EVAL_SEEDS[0]);
        assert!(s.sparsity() > 0.998, "sparsity {}", s.sparsity());
        let n = nyu_voxelized(EVAL_SEEDS[0]);
        assert!(n.sparsity() > 0.998, "sparsity {}", n.sparsity());
    }
}
