//! Canonical evaluation workloads: the fixed seeds and configurations every
//! table/figure binary and bench uses, so all results refer to the same
//! inputs.

use esca_pointcloud::{synthetic, transform, voxelize};
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
use esca_sscn::unet::{SsUNet, UNetConfig};
use esca_sscn::weights::ConvWeights;
use esca_tensor::{Extent3, SparseTensor, Q16};

/// The paper's grid: feature maps normalized to 192³ (§IV-B).
pub const GRID_SIDE: u32 = 192;

/// Seeds of the evaluation samples (averaged over in Table I).
pub const EVAL_SEEDS: [u64; 8] = [11, 23, 37, 41, 53, 67, 79, 97];

/// The 192³ evaluation grid.
pub fn grid() -> Extent3 {
    Extent3::cube(GRID_SIDE)
}

/// A ShapeNet-like sample voxelized to the evaluation grid (single
/// occupancy channel).
pub fn shapenet_voxelized(seed: u64) -> SparseTensor<f32> {
    shapenet_voxelized_at(seed, GRID_SIDE)
}

/// [`shapenet_voxelized`] on a `grid_side`³ grid: clouds are generated for
/// the 192³ evaluation grid and scaled for other sizes (the smoke-mode
/// knob of the engine bench).
pub fn shapenet_voxelized_at(seed: u64, grid_side: u32) -> SparseTensor<f32> {
    let cloud = synthetic::shapenet_like(seed, &synthetic::ShapeNetConfig::default());
    let cloud = if grid_side == GRID_SIDE {
        cloud
    } else {
        transform::scale(&cloud, grid_side as f32 / GRID_SIDE as f32, [0.0; 3])
    };
    voxelize::voxelize_occupancy(&cloud, Extent3::cube(grid_side))
}

/// An NYU-Depth-like sample voxelized to the evaluation grid.
pub fn nyu_voxelized(seed: u64) -> SparseTensor<f32> {
    let cloud = synthetic::nyu_like(seed, &synthetic::NyuConfig::default());
    voxelize::voxelize_occupancy(&cloud, grid())
}

/// The benchmark network: the paper's 3-D submanifold sparse U-Net
/// (kernel 3×3×3, deterministic seeded weights, BN folded).
pub fn unet() -> SsUNet {
    SsUNet::new(UNetConfig::default()).expect("default U-Net config is valid")
}

/// One Sub-Conv layer's workload: the exact tensor the network fed it plus
/// the layer's (float) weights — everything the platform models need.
#[derive(Debug, Clone)]
pub struct LayerWorkload {
    /// Layer name within the U-Net (e.g. `enc1.conv0`).
    pub name: String,
    /// The layer's input as the f32 network produced it.
    pub input: SparseTensor<f32>,
    /// The layer's folded float weights.
    pub weights: ConvWeights,
}

/// Runs the SS U-Net on a ShapeNet-like sample and captures every
/// Sub-Conv layer's input — the workload Table III and Fig. 10 replay on
/// every platform.
pub fn unet_subconv_workload(seed: u64) -> Vec<LayerWorkload> {
    let net = unet();
    let input = shapenet_voxelized(seed);
    let (_, traces) = net
        .forward_trace(&input)
        .expect("forward pass on a valid input");
    traces
        .into_iter()
        .map(|t| LayerWorkload {
            weights: net.subconv_layers()[t.index].1.clone(),
            name: t.name,
            input: t.input,
        })
        .collect()
}

/// The streaming layer stack: the leading Sub-Conv layers of the U-Net
/// that chain directly from the single-channel voxelized input (stem and
/// finest-level encoder convs), quantized and ReLU'd — the
/// accelerator-resident network a frame stream runs against. Stops at
/// `n_layers` or at the first layer that breaks the channel chain.
pub fn streaming_stack(n_layers: usize) -> Vec<(QuantizedWeights, bool)> {
    let net = unet();
    let mut stack = Vec::new();
    let mut ch = 1usize;
    for (_, w) in net.subconv_layers() {
        if stack.len() >= n_layers || w.in_ch() != ch {
            break;
        }
        ch = w.out_ch();
        stack.push((QuantizedWeights::auto(w, 8, 12).expect("quantizable"), true));
    }
    stack
}

/// A "moving object" frame stream for streaming benchmarks: one
/// ShapeNet-like object slowly rotating about the grid centre, voxelized
/// to a `grid_side`³ grid (clouds are generated for the 192³ evaluation
/// grid and scaled down for smaller ones) and quantized for `stack`'s
/// first layer.
pub fn streaming_frames(
    seed: u64,
    n_frames: usize,
    grid_side: u32,
    stack: &[(QuantizedWeights, bool)],
) -> Vec<SparseTensor<Q16>> {
    let base = synthetic::shapenet_like(seed, &synthetic::ShapeNetConfig::default());
    let base = if grid_side == GRID_SIDE {
        base
    } else {
        transform::scale(&base, grid_side as f32 / GRID_SIDE as f32, [0.0; 3])
    };
    let extent = Extent3::cube(grid_side);
    let c = grid_side as f32 / 2.0;
    let act = stack
        .first()
        .map(|(w, _)| w.quant().act)
        .expect("non-empty stack");
    (0..n_frames)
        .map(|i| {
            let rotated = transform::rotate_z(&base, 0.1 * i as f32, [c, c, c]);
            quantize_tensor(&voxelize::voxelize_occupancy(&rotated, extent), act)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_stack_chains_from_occupancy_input() {
        let stack = streaming_stack(3);
        assert_eq!(stack.len(), 3);
        assert_eq!(stack[0].0.in_ch(), 1);
        for pair in stack.windows(2) {
            assert_eq!(pair[0].0.out_ch(), pair[1].0.in_ch());
        }
    }

    #[test]
    fn streaming_frames_differ_but_share_shape() {
        let stack = streaming_stack(1);
        let frames = streaming_frames(EVAL_SEEDS[1], 3, 64, &stack);
        assert_eq!(frames.len(), 3);
        for f in &frames {
            assert_eq!(f.channels(), 1);
            assert!(f.nnz() > 0);
        }
        assert_ne!(frames[0].coords(), frames[1].coords());
    }

    #[test]
    fn workloads_are_in_the_papers_sparsity_regime() {
        let s = shapenet_voxelized(EVAL_SEEDS[0]);
        assert!(s.sparsity() > 0.998, "sparsity {}", s.sparsity());
        let n = nyu_voxelized(EVAL_SEEDS[0]);
        assert!(n.sparsity() > 0.998, "sparsity {}", n.sparsity());
    }
}
