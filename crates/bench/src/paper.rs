//! Reference numbers reported by the paper, used to print
//! paper-vs-measured comparisons next to every regenerated table.

/// One row of the paper's Table I.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// Cubic tile side.
    pub tile: u32,
    /// "Active Tiles" column.
    pub active: usize,
    /// "All Tiles" column.
    pub all: usize,
    /// "Removing Ratio" column (fraction).
    pub ratio: f64,
}

/// Paper Table I, ShapeNet block.
pub const TABLE1_SHAPENET: [Table1Row; 4] = [
    Table1Row {
        tile: 4,
        active: 198,
        all: 110_592,
        ratio: 0.9982,
    },
    Table1Row {
        tile: 8,
        active: 42,
        all: 13_824,
        ratio: 0.9969,
    },
    Table1Row {
        tile: 12,
        active: 23,
        all: 4_096,
        ratio: 0.9943,
    },
    Table1Row {
        tile: 16,
        active: 14,
        all: 1_728,
        ratio: 0.9918,
    },
];

/// Paper Table I, NYU block.
pub const TABLE1_NYU: [Table1Row; 4] = [
    Table1Row {
        tile: 4,
        active: 161,
        all: 110_592,
        ratio: 0.9985,
    },
    Table1Row {
        tile: 8,
        active: 33,
        all: 13_824,
        ratio: 0.9976,
    },
    Table1Row {
        tile: 12,
        active: 19,
        all: 4_096,
        ratio: 0.9953,
    },
    Table1Row {
        tile: 16,
        active: 9,
        all: 1_728,
        ratio: 0.9948,
    },
];

/// Paper Table II: ZCU102 implementation report.
#[derive(Debug, Clone, Copy)]
pub struct Table2 {
    /// Clock frequency in MHz.
    pub freq_mhz: u32,
    /// Lookup tables used.
    pub lut: u32,
    /// Flip-flops used.
    pub ff: u32,
    /// Block RAMs used (36 Kb equivalents; .5 = one 18 Kb half).
    pub bram: f64,
    /// DSP slices used.
    pub dsp: u32,
}

/// Paper Table II values.
pub const TABLE2: Table2 = Table2 {
    freq_mhz: 270,
    lut: 17_614,
    ff: 12_142,
    bram: 365.5,
    dsp: 256,
};

/// ZCU102 totals used for the utilization percentages in Table II.
pub const ZCU102_LUT_TOTAL: u32 = 274_080;
/// ZCU102 flip-flop capacity.
pub const ZCU102_FF_TOTAL: u32 = 548_160;
/// ZCU102 BRAM capacity (36 Kb blocks).
pub const ZCU102_BRAM_TOTAL: f64 = 912.0;
/// ZCU102 DSP capacity.
pub const ZCU102_DSP_TOTAL: u32 = 2_520;

/// One column of the paper's Table III.
#[derive(Debug, Clone, Copy)]
pub struct Table3Entry {
    /// Platform name.
    pub device: &'static str,
    /// Clock frequency in MHz (None where the paper leaves it out).
    pub freq_mhz: Option<u32>,
    /// Evaluated model.
    pub model: &'static str,
    /// Numeric precision.
    pub precision: &'static str,
    /// Measured power in watts.
    pub power_w: f64,
    /// Effective performance in GOPS (nonzero MACs only).
    pub gops: f64,
    /// Power efficiency in GOPS/W.
    pub gops_per_w: f64,
}

/// Paper Table III: Tesla P100 GPU column.
pub const TABLE3_GPU: Table3Entry = Table3Entry {
    device: "Tesla P100",
    freq_mhz: None,
    model: "SS U-Net",
    precision: "FP32",
    power_w: 90.56,
    gops: 9.40,
    gops_per_w: 0.10,
};

/// Paper Table III: the FPGA comparator \[19\] (O-PointNet on XC7Z045).
pub const TABLE3_REF19: Table3Entry = Table3Entry {
    device: "Zynq XC7Z045 [19]",
    freq_mhz: Some(100),
    model: "O-Pointnet",
    precision: "INT16",
    power_w: 2.15,
    gops: 1.21,
    gops_per_w: 0.56,
};

/// Paper Table III: the ESCA column.
pub const TABLE3_ESCA: Table3Entry = Table3Entry {
    device: "Zynq ZCU102 (ours)",
    freq_mhz: Some(270),
    model: "SS U-Net",
    precision: "INT8/INT16",
    power_w: 3.45,
    gops: 17.73,
    gops_per_w: 5.14,
};

/// Fig. 10 headline speedups of ESCA when processing a Sub-Conv layer.
pub const FIG10_SPEEDUP_VS_CPU: f64 = 8.41;
/// Fig. 10 speedup of ESCA over the GPU.
pub const FIG10_SPEEDUP_VS_GPU: f64 = 1.89;
