//! # esca-bench
//!
//! Benchmark harness for ESCA-rs: canonical workloads, paper reference
//! constants, and table formatting shared by the Criterion benches and the
//! table-regenerating binaries (`table1`, `table2`, `table3`, `fig10`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;
pub mod report;
pub mod svg;
pub mod tables;
pub mod workloads;
