//! SLO sweep for the ingest admission plane: replayable chaos campaigns
//! over fault rate x retries x cycle budget x queue depth, reduced to an
//! availability/latency Pareto front and an operating-point selection.
//!
//! Every campaign is a seeded, deterministic overload scenario (arrivals
//! at twice the modeled drain rate, two tenants with unequal quotas) run
//! through [`StreamingSession::run_batch_ingest`]. Availability is the
//! completed fraction in ppm; latency is the modeled per-frame
//! `queue_wait + spent_cycles`, reported at p99. Both live entirely in
//! the cycle domain, so the whole sweep replays bit-exactly.
//!
//! Run with `cargo run --release -p esca-bench --bin slo_front --
//! [--smoke] [--out FILE]`. The JSON artifact carries every swept
//! point, the Pareto front and the selected operating point; the CLI's
//! `--slo-front FILE` flag feeds it back into a live session's
//! `/healthz`.

use esca::admission::{
    pareto_front, select_operating_point, AdmissionConfig, Arrival, SloTarget, TenantQuota,
};
use esca::resilience::{FaultConfig, FaultRates, RecoveryPolicy};
use esca::streaming::StreamingSession;
use esca::{Esca, EscaConfig};
use esca_bench::workloads;
use esca_telemetry::serve::OperatingPoint;
use serde::Serialize;

const CAMPAIGN_SEED: u64 = 0x510F; // replayable: the sole randomness source
/// Modeled service time per frame — the same order as the stack's real
/// per-frame cycle cost, so queueing delay and compute cost land on one
/// scale and deeper queues genuinely trade latency for availability.
const DRAIN_CYCLES: u64 = 70_000;
const ARRIVAL_PERIOD: u64 = 35_000; // 2x overload

/// The artifact `--out` writes: the full sweep, its Pareto reduction and
/// the selector's choice under the default SLO.
#[derive(Serialize)]
struct SweepArtifact {
    seed: u64,
    frames: usize,
    drain_cycles: u64,
    arrival_period: u64,
    slo: SloTarget,
    points: Vec<OperatingPoint>,
    front: Vec<OperatingPoint>,
    selected: OperatingPoint,
}

/// One overload campaign at a fixed policy tuple, reduced to an
/// [`OperatingPoint`].
fn run_point(
    frames: &[esca_tensor::SparseTensor<esca_tensor::Q16>],
    stack: &[(esca_sscn::quant::QuantizedWeights, bool)],
    fault_rate_ppm: u64,
    max_retries: u32,
    cycle_budget: u64,
    queue_depth: u64,
) -> OperatingPoint {
    let arrivals: Vec<Arrival> = (0..frames.len())
        .map(|i| Arrival {
            frame: i,
            tenant: if i % 2 == 0 { 1 } else { 2 },
            at_cycle: i as u64 * ARRIVAL_PERIOD,
        })
        .collect();
    let admission = AdmissionConfig {
        queue_depth: queue_depth as usize,
        drain_cycles: DRAIN_CYCLES,
        tenants: vec![
            TenantQuota {
                tenant: 1,
                cycles_per_token: ARRIVAL_PERIOD,
                burst: 2,
                priority: 1,
            },
            TenantQuota {
                tenant: 2,
                cycles_per_token: ARRIVAL_PERIOD * 2,
                burst: 2,
                priority: 0,
            },
        ],
        ..AdmissionConfig::default()
    };
    let rate = fault_rate_ppm as f64 / 1e6;
    let cfg = FaultConfig {
        seed: CAMPAIGN_SEED ^ fault_rate_ppm ^ (queue_depth << 32),
        rates: FaultRates {
            frame_corrupt: rate,
            stall: rate,
            ..FaultRates::off()
        },
        max_stall_cycles: 3_000,
        recovery: RecoveryPolicy {
            max_retries,
            cycle_budget: (cycle_budget > 0).then_some(cycle_budget),
            ..RecoveryPolicy::default()
        },
        ..FaultConfig::off(CAMPAIGN_SEED)
    };
    let esca = Esca::new(EscaConfig::default()).expect("valid config");
    let session = StreamingSession::new(esca, stack.to_vec(), 2);
    let report = session
        .run_batch_ingest(frames, &arrivals, &cfg, &admission)
        .expect("campaign runs");

    let availability_ppm = report.completed() as u64 * 1_000_000 / frames.len() as u64;
    // Modeled end-to-end latency of completed frames: queueing delay
    // plus the cycles the attempts actually spent.
    let mut latencies: Vec<u64> = report
        .frames
        .iter()
        .filter(|fr| fr.outcome.completed())
        .map(|fr| report.admissions[fr.frame].queue_wait_cycles() + fr.spent_cycles)
        .collect();
    latencies.sort_unstable();
    let p99_latency_cycles = latencies
        .get(((latencies.len() * 99).div_ceil(100)).saturating_sub(1))
        .copied()
        .unwrap_or(0);
    OperatingPoint {
        fault_rate_ppm,
        max_retries,
        cycle_budget,
        queue_depth,
        availability_ppm,
        p99_latency_cycles,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let n_frames = if smoke { 8 } else { 16 };
    let stack = workloads::streaming_stack(2);
    let frames = workloads::streaming_frames(workloads::EVAL_SEEDS[0], n_frames, 32, &stack);

    let fault_rates: &[u64] = if smoke { &[0] } else { &[0, 150_000, 300_000] };
    let retries: &[u32] = if smoke { &[2] } else { &[0, 2] };
    let budgets: &[u64] = if smoke { &[0] } else { &[0, 60_000] };
    let depths: &[u64] = &[2, 4, 8];

    println!("== SLO sweep: {n_frames} frames, 2x overload, seed {CAMPAIGN_SEED:#x} ==");
    println!(
        "{:>9} | {:>7} | {:>8} | {:>5} | {:>9} | {:>10}",
        "fault ppm", "retries", "budget", "depth", "avail ppm", "p99 cycles"
    );
    let mut points = Vec::new();
    for &fault_rate_ppm in fault_rates {
        for &max_retries in retries {
            for &cycle_budget in budgets {
                for &queue_depth in depths {
                    let p = run_point(
                        &frames,
                        &stack,
                        fault_rate_ppm,
                        max_retries,
                        cycle_budget,
                        queue_depth,
                    );
                    println!(
                        "{:>9} | {:>7} | {:>8} | {:>5} | {:>9} | {:>10}",
                        p.fault_rate_ppm,
                        p.max_retries,
                        p.cycle_budget,
                        p.queue_depth,
                        p.availability_ppm,
                        p.p99_latency_cycles
                    );
                    points.push(p);
                }
            }
        }
    }

    let front = pareto_front(&points);
    let slo = SloTarget::default();
    let selected = select_operating_point(&points, &slo).expect("non-empty sweep");
    println!("\nPareto front ({} points):", front.len());
    for p in &front {
        let marker = if *p == selected { "  <- selected" } else { "" };
        println!(
            "  depth {} retries {} budget {} fault {} -> {} ppm @ p99 {} cycles{}",
            p.queue_depth,
            p.max_retries,
            p.cycle_budget,
            p.fault_rate_ppm,
            p.availability_ppm,
            p.p99_latency_cycles,
            marker
        );
    }
    println!(
        "selected operating point: depth {} (availability {} ppm, p99 {} cycles) for SLO >= {} ppm",
        selected.queue_depth,
        selected.availability_ppm,
        selected.p99_latency_cycles,
        slo.min_availability_ppm
    );

    assert!(
        front.len() >= 3,
        "sweep must expose at least 3 distinct operating points, got {}",
        front.len()
    );

    if let Some(path) = out {
        let artifact = SweepArtifact {
            seed: CAMPAIGN_SEED,
            frames: n_frames,
            drain_cycles: DRAIN_CYCLES,
            arrival_period: ARRIVAL_PERIOD,
            slo,
            points,
            front,
            selected,
        };
        let json = serde_json::to_string_pretty(&artifact).expect("plain structs serialize");
        std::fs::write(&path, json).expect("artifact written");
        println!("wrote {path}");
    }
}
