//! Regenerates the paper's **Fig. 10** (time consumption when processing
//! Sub-Conv layers: CPU vs GPU vs ESCA) on the SS U-Net / ShapeNet-like
//! workload.
//!
//! Run with `cargo run --release -p esca-bench --bin fig10`.

use esca::EscaConfig;
use esca_bench::{tables, workloads};

fn main() {
    let cfg = EscaConfig::default();
    let cmp = tables::compare_platforms(workloads::EVAL_SEEDS[0], &cfg);
    tables::print_fig10(&cmp);

    // Also regenerate the figure itself.
    let svg = esca_bench::svg::render_fig10(&cmp.rows);
    let dir = std::path::Path::new(esca_bench::report::REPORT_DIR);
    if let Err(e) =
        std::fs::create_dir_all(dir).and_then(|_| std::fs::write(dir.join("fig10.svg"), &svg))
    {
        eprintln!("failed to write fig10.svg: {e}");
    } else {
        println!("figure: {}/fig10.svg", esca_bench::report::REPORT_DIR);
    }
}
