//! Regenerates the paper's **Table II** (FPGA frequency and resource
//! utilization) from the analytical area model at the default design
//! point.
//!
//! Run with `cargo run --release -p esca-bench --bin table2`.

use esca::EscaConfig;
use esca_bench::tables;

fn main() {
    tables::print_table2(&EscaConfig::default());
}
