//! Matching-reuse engine benchmark: how much host wall-clock the rulebook
//! cache and the flat gather→GEMM→scatter path buy over the direct
//! per-layer execution of the SS U-Net golden model.
//!
//! Three execution modes over the same ShapeNet-like voxelized samples:
//!
//! * **direct** — `SsUNet::forward`, the per-site hash-probing reference
//!   path that re-derives coordinate matching in every layer;
//! * **flat cold** — `SsUNet::forward_engine` with a fresh engine per
//!   pass: flat kernels, rulebooks built once per resolution level;
//! * **flat cached** — a persistent engine across passes: after warm-up,
//!   every layer of every pass reuses a cached rulebook.
//!
//! Results (wall times, cache hit rates per U-Net level, speedups, plus a
//! static-geometry streaming comparison of the quantized golden path) are
//! written machine-readably to `BENCH_sscn.json` in the working directory
//! and mirrored under `target/esca-reports/`.
//!
//! Run with `cargo run --release -p esca-bench --bin sscn_engine`
//! (`-- --smoke` for the fast CI/verify variant on a 64³ grid).

// A benchmark binary exists to measure wall-clock; exempt from the
// workspace-wide `disallowed-methods` wall on `Instant::now` (clippy.toml).
#![allow(clippy::disallowed_methods)]

use esca::streaming::StreamingSession;
use esca::{Esca, EscaConfig};
use esca_bench::{report, workloads};
use esca_sscn::engine::{FlatEngine, RulebookCache};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct CacheJson {
    misses: u64,
    hits: u64,
    hit_rate: f64,
}

#[derive(Debug, Serialize)]
struct LevelJson {
    level: usize,
    grid_side: u32,
    layers: usize,
    hits: u64,
    hit_rate: f64,
}

#[derive(Debug, Serialize)]
struct UnetJson {
    layers: usize,
    samples: usize,
    passes_per_mode: usize,
    direct_ms: f64,
    flat_cold_ms: f64,
    flat_cached_ms: f64,
    speedup_cold: f64,
    speedup_cached: f64,
    /// Persistent-engine cache counters over warm-up + measured passes.
    cache: CacheJson,
    per_level: Vec<LevelJson>,
}

#[derive(Debug, Serialize)]
struct StreamingJson {
    frames: usize,
    layers: usize,
    uncached_ms: f64,
    cached_ms: f64,
    speedup: f64,
    hit_rate: f64,
}

#[derive(Debug, Serialize)]
struct BenchJson {
    bench: &'static str,
    workload: String,
    mode: &'static str,
    grid_side: u32,
    seeds: Vec<u64>,
    mean_nnz: f64,
    unet: UnetJson,
    streaming: StreamingJson,
}

fn mean_ms(times: &[f64]) -> f64 {
    times.iter().sum::<f64>() / times.len() as f64
}

/// One U-Net pass per sample through `f`, returning mean wall ms per pass.
fn time_passes(
    samples: &[esca_tensor::SparseTensor<f32>],
    reps: usize,
    mut f: impl FnMut(&esca_tensor::SparseTensor<f32>) -> esca_tensor::SparseTensor<f32>,
) -> (f64, Vec<esca_tensor::SparseTensor<f32>>) {
    let mut times = Vec::new();
    let mut outputs = Vec::new();
    for _ in 0..reps {
        for s in samples {
            let t0 = Instant::now();
            let out = f(s);
            times.push(t0.elapsed().as_secs_f64() * 1e3);
            if outputs.len() < samples.len() {
                outputs.push(out);
            }
        }
    }
    (mean_ms(&times), outputs)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (grid_side, n_samples, reps) = if smoke { (64, 1, 2) } else { (192, 4, 3) };
    let seeds: Vec<u64> = workloads::EVAL_SEEDS[..n_samples].to_vec();
    let net = workloads::unet();
    let levels = net.config().levels;

    let samples: Vec<_> = seeds
        .iter()
        .map(|&s| workloads::shapenet_voxelized_at(s, grid_side))
        .collect();
    let mean_nnz = samples.iter().map(|s| s.nnz() as f64).sum::<f64>() / samples.len() as f64;
    println!(
        "== sscn matching-reuse engine bench: {} x {grid_side}^3 ShapeNet-like samples, \
         mean nnz {mean_nnz:.0}, {} passes/mode ==",
        samples.len(),
        samples.len() * reps
    );

    // Direct reference path.
    let (direct_ms, direct_out) = time_passes(&samples, reps, |s| net.forward(s).expect("runs"));

    // Flat path, cold: a fresh engine (empty cache) every pass.
    let (cold_ms, cold_out) = time_passes(&samples, reps, |s| {
        let mut engine = FlatEngine::new();
        net.forward_engine(s, &mut engine).expect("runs")
    });

    // Flat path, cached: one persistent engine; warm it first so the
    // steady state is measured (the warm-up pass per geometry pays the
    // builds, every measured layer then hits).
    let mut engine = FlatEngine::new();
    for s in &samples {
        let _ = net.forward_engine(s, &mut engine).expect("runs");
    }
    let (cached_ms, cached_out) = time_passes(&samples, reps, |s| {
        net.forward_engine(s, &mut engine).expect("runs")
    });

    // Bit-identity across all three paths, every sample.
    for ((d, c), k) in direct_out.iter().zip(&cold_out).zip(&cached_out) {
        assert_eq!(d.coords(), c.coords());
        assert_eq!(d.features(), c.features(), "cold flat path diverged");
        assert_eq!(d.features(), k.features(), "cached flat path diverged");
    }

    // Per-level cache accounting on one fresh pass: group layers by the
    // grid side their input lives on (level l runs at grid_side / 2^l).
    let mut probe = FlatEngine::new();
    let mut layer_stats: Vec<(u32, bool)> = Vec::new();
    let _ = net
        .forward_with(&samples[0], |_, _, w, x| {
            let misses_before = probe.cache().misses();
            let y = probe.subconv(x, w, true);
            layer_stats.push((x.extent().x, probe.cache().misses() == misses_before));
            y
        })
        .expect("runs");
    let per_level: Vec<LevelJson> = (0..levels)
        .map(|l| {
            let side = grid_side >> l;
            let layers = layer_stats.iter().filter(|(s, _)| *s == side).count();
            let hits = layer_stats.iter().filter(|(s, h)| *s == side && *h).count() as u64;
            LevelJson {
                level: l,
                grid_side: side,
                layers,
                hits,
                hit_rate: hits as f64 / layers as f64,
            }
        })
        .collect();
    assert_eq!(
        layer_stats.len(),
        net.subconv_layers().len(),
        "every Sub-Conv layer accounted to a level"
    );

    println!(
        "direct {direct_ms:.2} ms | flat cold {cold_ms:.2} ms ({:.2}x) | \
         flat cached {cached_ms:.2} ms ({:.2}x)",
        direct_ms / cold_ms,
        direct_ms / cached_ms
    );
    for l in &per_level {
        println!(
            "  level {}: {}^3, {} layers, {} hits ({:.0}% reuse)",
            l.level,
            l.grid_side,
            l.layers,
            l.hits,
            l.hit_rate * 100.0
        );
    }

    // Static-geometry streaming: the quantized golden path over repeated
    // frames of one scene, fresh cache per frame vs one shared cache.
    let stack = workloads::streaming_stack(3);
    let n_frames = if smoke { 4 } else { 8 };
    let frames: Vec<_> = {
        let f = workloads::streaming_frames(seeds[0], 1, grid_side, &stack);
        (0..n_frames).map(|_| f[0].clone()).collect()
    };
    let esca = Esca::new(EscaConfig::default()).expect("valid config");
    let t0 = Instant::now();
    for f in &frames {
        let cache = Arc::new(RulebookCache::new());
        let _ = esca.run_network_golden(f, &stack, &cache).expect("runs");
    }
    let uncached_ms = t0.elapsed().as_secs_f64() * 1e3 / n_frames as f64;
    let session = StreamingSession::new(esca, stack.clone(), 1);
    let _ = session.run_golden_batch(&frames).expect("runs"); // warm
    let t0 = Instant::now();
    let _ = session.run_golden_batch(&frames).expect("runs");
    let stream_cached_ms = t0.elapsed().as_secs_f64() * 1e3 / n_frames as f64;
    let stream_hit_rate = session.rulebook_cache().hit_rate();
    println!(
        "streaming golden path, {n_frames} static frames x {} layers: \
         {uncached_ms:.2} ms/frame uncached -> {stream_cached_ms:.2} ms/frame shared cache \
         ({:.2}x, hit rate {:.2})",
        stack.len(),
        uncached_ms / stream_cached_ms,
        stream_hit_rate
    );

    let json = BenchJson {
        bench: "sscn_engine",
        workload: format!(
            "SS U-Net ({} Sub-Conv layers) on ShapeNet-like {grid_side}^3 occupancy grids",
            net.subconv_layers().len()
        ),
        mode: if smoke { "smoke" } else { "full" },
        grid_side,
        seeds,
        mean_nnz,
        unet: UnetJson {
            layers: net.subconv_layers().len(),
            samples: samples.len(),
            passes_per_mode: samples.len() * reps,
            direct_ms,
            flat_cold_ms: cold_ms,
            flat_cached_ms: cached_ms,
            speedup_cold: direct_ms / cold_ms,
            speedup_cached: direct_ms / cached_ms,
            cache: CacheJson {
                misses: engine.cache().misses(),
                hits: engine.cache().hits(),
                hit_rate: engine.cache().hit_rate(),
            },
            per_level,
        },
        streaming: StreamingJson {
            frames: n_frames,
            layers: stack.len(),
            uncached_ms,
            cached_ms: stream_cached_ms,
            speedup: uncached_ms / stream_cached_ms,
            hit_rate: stream_hit_rate,
        },
    };

    std::fs::write(
        "BENCH_sscn.json",
        serde_json::to_string_pretty(&json).expect("serializable") + "\n",
    )
    .expect("write BENCH_sscn.json");
    let mirrored = report::write_json("BENCH_sscn", &json).expect("report dir writable");
    println!("wrote BENCH_sscn.json (mirrored at {})", mirrored.display());

    if !smoke {
        assert!(
            direct_ms / cached_ms >= 1.5,
            "cached flat path must be >= 1.5x over the direct path, got {:.2}x",
            direct_ms / cached_ms
        );
    }
}
