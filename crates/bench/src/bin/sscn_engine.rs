//! Matching-reuse engine benchmark: how much host wall-clock the rulebook
//! cache and the flat gather→GEMM→scatter path buy over the direct
//! per-layer execution of the SS U-Net golden model, per GEMM backend.
//!
//! For every grid in the mode's workload list, three execution modes run
//! over the same ShapeNet-like voxelized samples:
//!
//! * **direct** — `SsUNet::forward`, the per-site hash-probing reference
//!   path that re-derives coordinate matching in every layer;
//! * **flat cold** — `SsUNet::forward_engine` with a fresh engine per
//!   pass: flat kernels, rulebooks built once per resolution level;
//! * **flat cached** — a persistent engine with a whole-network
//!   [`PlanCache`] across passes: warm-up records one GeometryPlan per
//!   sample geometry, every measured pass replays it with a single cache
//!   probe and zero per-layer rulebook lookups.
//!
//! The flat modes run once per [`GemmBackendKind`]: `scalar-ref` outputs
//! are asserted bit-identical to the direct path, `blocked` outputs
//! epsilon-bounded (reassociated f32 adds). A per-layer-width microkernel
//! section times one tap GEMM scalar-vs-blocked at the U-Net's channel
//! widths, and the streaming section checks the quantized golden path is
//! bit-identical across backends (integer accumulation is exact).
//!
//! A geometry-plan section exercises the whole-network [`PlanCache`] over
//! a static scene on both the golden path (per-op rulebook caching vs
//! one-probe plan replay, bit-identical) and the cycle model (every frame
//! after the first matching-resident with zero match cycles).
//!
//! Results are written machine-readably to `BENCH_sscn.json` in the
//! working directory and mirrored under `target/esca-reports/`. Modes:
//!
//! * `--smoke` — 64³ only, small reps: the fast CI/verify variant;
//! * `--full` (or no flag) — 64³ **and** the ROADMAP-target 192³
//!   workload, and gates `blocked` flat-cached vs direct ≥ 4.5× on 192³.

// A benchmark binary exists to measure wall-clock; exempt from the
// workspace-wide `disallowed-methods` wall on `Instant::now` (clippy.toml).
#![allow(clippy::disallowed_methods)]

use esca::streaming::StreamingSession;
use esca::{Esca, EscaConfig};
use esca_bench::{report, workloads};
use esca_sscn::engine::{FlatEngine, RulebookCache};
use esca_sscn::gemm::GemmBackendKind;
use esca_sscn::plan::PlanCache;
use esca_sscn::rulebook::TapRules;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Per-element tolerance of the blocked tier vs the scalar reference:
/// reassociated f32 accumulation over ≤ a few hundred terms.
const BLOCKED_TOL: f32 = 1e-4;

#[derive(Debug, Serialize)]
struct CacheJson {
    misses: u64,
    hits: u64,
    hit_rate: f64,
}

#[derive(Debug, Serialize)]
struct LevelJson {
    level: usize,
    grid_side: u32,
    layers: usize,
    hits: u64,
    hit_rate: f64,
}

#[derive(Debug, Serialize)]
struct BackendJson {
    backend: &'static str,
    flat_cold_ms: f64,
    flat_cached_ms: f64,
    flat_cached_best_ms: f64,
    speedup_cold: f64,
    speedup_cached: f64,
    /// Best-of-reps ratio (per-sample minima on both sides): the
    /// noise-robust companion statistic to the mean the gate checks.
    speedup_cached_best: f64,
    /// Persistent-engine per-op rulebook-cache counters over warm-up +
    /// measured passes. With the plan cache attached, measured passes
    /// replay whole plans, so these freeze after warm-up.
    cache: CacheJson,
    /// Whole-network GeometryPlan cache counters: one miss per distinct
    /// sample geometry, one hit per replayed pass.
    plan: CacheJson,
}

#[derive(Debug, Serialize)]
struct StreamingJson {
    frames: usize,
    layers: usize,
    backend: &'static str,
    uncached_ms: f64,
    cached_ms: f64,
    speedup: f64,
    hit_rate: f64,
}

/// Whole-network GeometryPlan cache section: per-op rulebook caching vs
/// one-probe plan replay on the golden path, plus the cycle model's
/// matching-resident collapse over the same static scene.
#[derive(Debug, Serialize)]
struct PlanJson {
    frames: usize,
    layers: usize,
    backend: &'static str,
    per_op_cached_ms: f64,
    planned_ms: f64,
    speedup: f64,
    plan_hits: u64,
    plan_misses: u64,
    plan_hit_rate: f64,
    plan_resident_bytes: u64,
    resident_frames: u64,
    match_cycles_baseline: u64,
    match_cycles_planned: u64,
}

#[derive(Debug, Serialize)]
struct GridJson {
    grid_side: u32,
    layers: usize,
    samples: usize,
    passes_per_mode: usize,
    seeds: Vec<u64>,
    mean_nnz: f64,
    direct_ms: f64,
    direct_best_ms: f64,
    backends: Vec<BackendJson>,
    per_level: Vec<LevelJson>,
    streaming: StreamingJson,
    geometry_plan: PlanJson,
}

#[derive(Debug, Serialize)]
struct MicrokernelJson {
    in_ch: usize,
    out_ch: usize,
    rows: usize,
    scalar_ms: f64,
    blocked_ms: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct BenchJson {
    bench: &'static str,
    workload: String,
    mode: &'static str,
    grids: Vec<GridJson>,
    microkernel: Vec<MicrokernelJson>,
}

/// Wall-clock summary of one mode's passes: the plain mean, and the mean
/// of each sample's best rep — the noise-robust statistic the speedup
/// gate uses (host scheduler jitter inflates means, never deflates
/// minima; both sides of every ratio use the same statistic). All modes
/// are measured **interleaved** within each rep — direct, cold and
/// cached passes of one sample run back-to-back — so a host load spike
/// lands on every mode's timings equally instead of skewing whichever
/// phase it happened to overlap, and the paired minima come from the
/// same quiet windows.
#[derive(Debug, Clone, Copy)]
struct PassTimes {
    mean_ms: f64,
    best_ms: f64,
}

/// Accumulates per-sample wall-clock observations for one mode.
struct ModeTimes {
    sum: f64,
    n: usize,
    best: Vec<f64>,
}

impl ModeTimes {
    fn new(samples: usize) -> Self {
        ModeTimes {
            sum: 0.0,
            n: 0,
            best: vec![f64::INFINITY; samples],
        }
    }

    fn record(&mut self, sample: usize, dt_ms: f64) {
        self.sum += dt_ms;
        self.n += 1;
        self.best[sample] = self.best[sample].min(dt_ms);
    }

    fn times(&self) -> PassTimes {
        PassTimes {
            mean_ms: self.sum / self.n as f64,
            best_ms: self.best.iter().sum::<f64>() / self.best.len() as f64,
        }
    }
}

/// Asserts `got` within the blocked tier's per-element epsilon of `want`.
fn assert_epsilon(
    want: &esca_tensor::SparseTensor<f32>,
    got: &esca_tensor::SparseTensor<f32>,
    what: &str,
) {
    assert_eq!(want.coords(), got.coords(), "{what}: active set diverged");
    for (x, y) in got.features().iter().zip(want.features()) {
        assert!(
            (x - y).abs() <= BLOCKED_TOL * y.abs().max(1.0),
            "{what}: {x} vs {y} outside epsilon"
        );
    }
}

/// Measures one grid workload: direct reference once, then the flat
/// cold/cached modes per backend with the exactness-tier asserts.
fn bench_grid(grid_side: u32, n_samples: usize, reps: usize, smoke: bool) -> GridJson {
    let seeds: Vec<u64> = workloads::EVAL_SEEDS[..n_samples].to_vec();
    let net = workloads::unet();
    let levels = net.config().levels;

    let samples: Vec<_> = seeds
        .iter()
        .map(|&s| workloads::shapenet_voxelized_at(s, grid_side))
        .collect();
    let mean_nnz = samples.iter().map(|s| s.nnz() as f64).sum::<f64>() / samples.len() as f64;
    println!(
        "== {grid_side}^3: {} ShapeNet-like samples, mean nnz {mean_nnz:.0}, \
         {} passes/mode ==",
        samples.len(),
        samples.len() * reps
    );

    // Persistent (cached-mode) engines with a whole-network plan cache,
    // warmed first so the steady state is measured: the warm-up pass per
    // geometry pays the rulebook/map builds and records a GeometryPlan,
    // every measured pass then replays the plan — one cache probe per
    // pass, zero per-layer lookups.
    let mut cached_engines: Vec<FlatEngine> = GemmBackendKind::ALL
        .iter()
        .map(|&kind| {
            let mut engine =
                FlatEngine::with_backend(kind).with_plan_cache(Some(Arc::new(PlanCache::new())));
            for s in &samples {
                let _ = net.forward_engine(s, &mut engine).expect("runs");
            }
            engine
        })
        .collect();

    // Interleaved measurement: every rep runs direct, then each backend's
    // cold and cached pass, per sample, back-to-back (see [`PassTimes`]).
    // Exactness tiers are asserted on every pass: scalar-ref is
    // bit-identical to the direct kernels, blocked is epsilon-bounded.
    let mut direct_t = ModeTimes::new(samples.len());
    let mut cold_t: Vec<ModeTimes> = (0..GemmBackendKind::ALL.len())
        .map(|_| ModeTimes::new(samples.len()))
        .collect();
    let mut cached_t: Vec<ModeTimes> = (0..GemmBackendKind::ALL.len())
        .map(|_| ModeTimes::new(samples.len()))
        .collect();
    for _ in 0..reps {
        for (si, s) in samples.iter().enumerate() {
            let t0 = Instant::now();
            let d = net.forward(s).expect("runs");
            direct_t.record(si, t0.elapsed().as_secs_f64() * 1e3);

            for (bi, &kind) in GemmBackendKind::ALL.iter().enumerate() {
                // Cold: a fresh engine (empty cache) every pass.
                let t0 = Instant::now();
                let mut fresh = FlatEngine::with_backend(kind);
                let c = net.forward_engine(s, &mut fresh).expect("runs");
                cold_t[bi].record(si, t0.elapsed().as_secs_f64() * 1e3);

                let t0 = Instant::now();
                let k = net
                    .forward_engine(s, &mut cached_engines[bi])
                    .expect("runs");
                cached_t[bi].record(si, t0.elapsed().as_secs_f64() * 1e3);

                match kind {
                    GemmBackendKind::ScalarRef => {
                        assert_eq!(d.coords(), c.coords());
                        assert_eq!(d.features(), c.features(), "cold scalar-ref flat diverged");
                        assert_eq!(
                            d.features(),
                            k.features(),
                            "cached scalar-ref flat diverged"
                        );
                    }
                    GemmBackendKind::Blocked => {
                        assert_epsilon(&d, &c, "cold blocked flat");
                        assert_epsilon(&d, &k, "cached blocked flat");
                    }
                }
            }
        }
    }

    let direct = direct_t.times();
    let mut backends = Vec::new();
    for (bi, &kind) in GemmBackendKind::ALL.iter().enumerate() {
        let cold = cold_t[bi].times();
        let cached = cached_t[bi].times();
        let engine = &cached_engines[bi];
        println!(
            "  [{}] direct {:.2} ms | flat cold {:.2} ms ({:.2}x) | \
             flat cached {:.2} ms ({:.2}x mean, {:.2}x best)",
            kind.label(),
            direct.mean_ms,
            cold.mean_ms,
            direct.mean_ms / cold.mean_ms,
            cached.mean_ms,
            direct.mean_ms / cached.mean_ms,
            direct.best_ms / cached.best_ms
        );
        backends.push(BackendJson {
            backend: kind.label(),
            flat_cold_ms: cold.mean_ms,
            flat_cached_ms: cached.mean_ms,
            flat_cached_best_ms: cached.best_ms,
            speedup_cold: direct.mean_ms / cold.mean_ms,
            speedup_cached: direct.mean_ms / cached.mean_ms,
            speedup_cached_best: direct.best_ms / cached.best_ms,
            cache: CacheJson {
                misses: engine.cache().misses(),
                hits: engine.cache().hits(),
                hit_rate: engine.cache().hit_rate(),
            },
            plan: {
                let plans = engine
                    .plan_cache()
                    .expect("cached engines carry a plan cache");
                CacheJson {
                    misses: plans.misses(),
                    hits: plans.hits(),
                    hit_rate: plans.hit_rate(),
                }
            },
        });
    }

    // Per-level cache accounting on one fresh pass: group layers by the
    // grid side their input lives on (level l runs at grid_side / 2^l).
    let mut probe = FlatEngine::new();
    let mut layer_stats: Vec<(u32, bool)> = Vec::new();
    let _ = net
        .forward_with(&samples[0], |_, _, w, x| {
            let misses_before = probe.cache().misses();
            let y = probe.subconv(x, w, true);
            layer_stats.push((x.extent().x, probe.cache().misses() == misses_before));
            y
        })
        .expect("runs");
    let per_level: Vec<LevelJson> = (0..levels)
        .map(|l| {
            let side = grid_side >> l;
            let layers = layer_stats.iter().filter(|(s, _)| *s == side).count();
            let hits = layer_stats.iter().filter(|(s, h)| *s == side && *h).count() as u64;
            LevelJson {
                level: l,
                grid_side: side,
                layers,
                hits,
                hit_rate: hits as f64 / layers as f64,
            }
        })
        .collect();
    assert_eq!(
        layer_stats.len(),
        net.subconv_layers().len(),
        "every Sub-Conv layer accounted to a level"
    );
    for l in &per_level {
        println!(
            "  level {}: {}^3, {} layers, {} hits ({:.0}% reuse)",
            l.level,
            l.grid_side,
            l.layers,
            l.hits,
            l.hit_rate * 100.0
        );
    }

    let streaming = bench_streaming(grid_side, &seeds, smoke);
    let geometry_plan = bench_plan(grid_side, &seeds, smoke);

    GridJson {
        grid_side,
        layers: net.subconv_layers().len(),
        samples: samples.len(),
        passes_per_mode: samples.len() * reps,
        seeds,
        mean_nnz,
        direct_ms: direct.mean_ms,
        direct_best_ms: direct.best_ms,
        backends,
        per_level,
        streaming,
        geometry_plan,
    }
}

/// Static-geometry streaming: the quantized golden path over repeated
/// frames of one scene, fresh cache per frame vs one shared cache, on
/// the default (blocked) backend — with a scalar-ref batch asserted
/// bit-identical (integer accumulation is associative, so the `_q` path
/// is exact on every backend).
fn bench_streaming(grid_side: u32, seeds: &[u64], smoke: bool) -> StreamingJson {
    let stack = workloads::streaming_stack(3);
    let n_frames = if smoke { 4 } else { 8 };
    let frames: Vec<_> = {
        let f = workloads::streaming_frames(seeds[0], 1, grid_side, &stack);
        (0..n_frames).map(|_| f[0].clone()).collect()
    };
    let esca = Esca::new(EscaConfig::default()).expect("valid config");
    let t0 = Instant::now();
    for f in &frames {
        let cache = Arc::new(RulebookCache::new());
        let _ = esca
            .run_network_golden_with(f, &stack, &cache, GemmBackendKind::Blocked)
            .expect("runs");
    }
    let uncached_ms = t0.elapsed().as_secs_f64() * 1e3 / n_frames as f64;
    let session =
        StreamingSession::new(esca, stack.clone(), 1).with_gemm_backend(GemmBackendKind::Blocked);
    let _ = session.run_golden_batch(&frames).expect("runs"); // warm
    let t0 = Instant::now();
    let blocked_out = session.run_golden_batch(&frames).expect("runs");
    let cached_ms = t0.elapsed().as_secs_f64() * 1e3 / n_frames as f64;
    let hit_rate = session.rulebook_cache().hit_rate();

    // Quantized cross-backend bit-exactness on the same batch.
    let esca2 = Esca::new(EscaConfig::default()).expect("valid config");
    let scalar_session = StreamingSession::new(esca2, stack.clone(), 1)
        .with_gemm_backend(GemmBackendKind::ScalarRef);
    let scalar_out = scalar_session.run_golden_batch(&frames).expect("runs");
    for (b, s) in blocked_out.iter().zip(&scalar_out) {
        assert_eq!(b.coords(), s.coords());
        assert_eq!(
            b.features(),
            s.features(),
            "quantized golden path diverged across GEMM backends"
        );
    }

    println!(
        "  streaming golden path, {n_frames} static frames x {} layers: \
         {uncached_ms:.2} ms/frame uncached -> {cached_ms:.2} ms/frame shared cache \
         ({:.2}x, hit rate {hit_rate:.2}, q bit-exact across backends)",
        stack.len(),
        uncached_ms / cached_ms,
    );

    StreamingJson {
        frames: n_frames,
        layers: stack.len(),
        backend: GemmBackendKind::Blocked.label(),
        uncached_ms,
        cached_ms,
        speedup: uncached_ms / cached_ms,
        hit_rate,
    }
}

/// Whole-network GeometryPlan cache over a static scene: the golden path
/// with only the per-op rulebook cache vs plan replay (one cache probe
/// per frame, zero per-layer lookups), asserted bit-identical; then the
/// cycle model with the plan cache attached, asserting every frame after
/// the first goes matching-resident with zero match cycles.
fn bench_plan(grid_side: u32, seeds: &[u64], smoke: bool) -> PlanJson {
    let stack = workloads::streaming_stack(3);
    let n_frames = if smoke { 4 } else { 8 };
    let frames: Vec<_> = {
        let f = workloads::streaming_frames(seeds[0], 1, grid_side, &stack);
        (0..n_frames).map(|_| f[0].clone()).collect()
    };

    // Golden path, per-op rulebook cache only (plan cache detached).
    let esca = Esca::new(EscaConfig::default()).expect("valid config");
    let baseline = StreamingSession::new(esca, stack.clone(), 1)
        .with_gemm_backend(GemmBackendKind::Blocked)
        .with_plan_cache(None);
    let _ = baseline.run_golden_batch(&frames).expect("runs"); // warm
    let t0 = Instant::now();
    let base_out = baseline.run_golden_batch(&frames).expect("runs");
    let per_op_cached_ms = t0.elapsed().as_secs_f64() * 1e3 / n_frames as f64;

    // Golden path with the whole-network plan cache: the warm batch
    // records one GeometryPlan, the measured batch replays it per frame.
    let plans = Arc::new(PlanCache::new());
    let esca = Esca::new(EscaConfig::default()).expect("valid config");
    let planned = StreamingSession::new(esca, stack.clone(), 1)
        .with_gemm_backend(GemmBackendKind::Blocked)
        .with_plan_cache(Some(plans.clone()));
    let _ = planned.run_golden_batch(&frames).expect("runs"); // record + warm
    let t0 = Instant::now();
    let plan_out = planned.run_golden_batch(&frames).expect("runs");
    let planned_ms = t0.elapsed().as_secs_f64() * 1e3 / n_frames as f64;
    for (b, p) in base_out.iter().zip(&plan_out) {
        assert_eq!(b.coords(), p.coords());
        assert_eq!(
            b.features(),
            p.features(),
            "plan replay diverged from the per-op cached golden path"
        );
    }
    assert_eq!(plans.misses(), 1, "one plan build for one static geometry");

    // Cycle model: with the plan cache attached, every frame after the
    // first is matching-resident and charges zero match cycles.
    let esca = Esca::new(EscaConfig::default()).expect("valid config");
    let cold = StreamingSession::new(esca, stack.clone(), 1).with_plan_cache(None);
    let cold_report = cold.run_batch(&frames).expect("runs");
    let esca = Esca::new(EscaConfig::default()).expect("valid config");
    let resident = StreamingSession::new(esca, stack.clone(), 1)
        .with_plan_cache(Some(Arc::new(PlanCache::new())));
    let resident_report = resident.run_batch(&frames).expect("runs");
    let match_cycles_baseline: u64 = cold_report.per_frame.iter().map(|s| s.match_cycles).sum();
    let match_cycles_planned: u64 = resident_report
        .per_frame
        .iter()
        .map(|s| s.match_cycles)
        .sum();
    let resident_frames = resident_report
        .per_frame
        .iter()
        .filter(|s| s.matching_resident)
        .count() as u64;
    assert_eq!(
        resident_frames,
        n_frames as u64 - 1,
        "every static frame after the first goes matching-resident"
    );
    for s in &resident_report.per_frame[1..] {
        assert_eq!(
            s.match_cycles, 0,
            "resident frames charge zero match cycles"
        );
    }

    println!(
        "  geometry plan, {n_frames} static frames x {} layers: \
         {per_op_cached_ms:.2} ms/frame per-op cache -> {planned_ms:.2} ms/frame plan replay \
         ({:.2}x, plan hit rate {:.2}); match cycles {match_cycles_baseline} -> \
         {match_cycles_planned} ({resident_frames} resident frames)",
        stack.len(),
        per_op_cached_ms / planned_ms,
        plans.hit_rate(),
    );

    PlanJson {
        frames: n_frames,
        layers: stack.len(),
        backend: GemmBackendKind::Blocked.label(),
        per_op_cached_ms,
        planned_ms,
        speedup: per_op_cached_ms / planned_ms,
        plan_hits: plans.hits(),
        plan_misses: plans.misses(),
        plan_hit_rate: plans.hit_rate(),
        plan_resident_bytes: plans.bytes() as u64,
        resident_frames,
        match_cycles_baseline,
        match_cycles_planned,
    }
}

/// Times one tap GEMM (`rows × in_ch × out_ch` MACs) per backend at each
/// of the U-Net's distinct layer widths — the scalar-vs-blocked
/// microkernel table for EXPERIMENTS.md.
fn bench_microkernel(smoke: bool) -> Vec<MicrokernelJson> {
    let net = workloads::unet();
    let mut widths: Vec<(usize, usize)> = net
        .subconv_layers()
        .iter()
        .map(|(_, w)| (w.in_ch(), w.out_ch()))
        .collect();
    widths.sort_unstable();
    widths.dedup();

    let rows: usize = if smoke { 2_000 } else { 20_000 };
    let reps = if smoke { 3 } else { 5 };
    let rules = TapRules {
        input: (0..rows as u32).collect(),
        output: (0..rows as u32).collect(),
    };
    println!("== microkernel: one tap GEMM, {rows} rows/op ==");
    let mut out = Vec::new();
    for (in_ch, out_ch) in widths {
        let feats: Vec<f32> = (0..rows * in_ch)
            .map(|i| ((i * 37 + 11) % 101) as f32 * 0.013 - 0.6)
            .collect();
        let w_tap: Vec<f32> = (0..in_ch * out_ch)
            .map(|i| ((i * 53 + 29) % 97) as f32 * 0.017 - 0.8)
            .collect();
        let time_backend = |kind: GemmBackendKind| {
            let backend = kind.backend();
            let mut acc = vec![0.0f32; rows * out_ch];
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                acc.fill(0.0);
                let t0 = Instant::now();
                backend.tap_f32(&feats, &rules, &w_tap, in_ch, out_ch, &mut acc);
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            (best, acc)
        };
        let (scalar_ms, scalar_acc) = time_backend(GemmBackendKind::ScalarRef);
        let (blocked_ms, blocked_acc) = time_backend(GemmBackendKind::Blocked);
        for (x, y) in blocked_acc.iter().zip(&scalar_acc) {
            assert!(
                (x - y).abs() <= BLOCKED_TOL * y.abs().max(1.0),
                "microkernel blocked tier outside epsilon at {in_ch}x{out_ch}"
            );
        }
        println!(
            "  {in_ch:>3} -> {out_ch:>3}: scalar {scalar_ms:.3} ms, blocked {blocked_ms:.3} ms \
             ({:.2}x)",
            scalar_ms / blocked_ms
        );
        out.push(MicrokernelJson {
            in_ch,
            out_ch,
            rows,
            scalar_ms,
            blocked_ms,
            speedup: scalar_ms / blocked_ms,
        });
    }
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let net = workloads::unet();
    // Smoke: 64³ only (CI/verify). Full (default or `--full`): 64³ and
    // the ROADMAP-target 192³ workload, both reported side by side.
    let grid_plan: &[(u32, usize, usize)] = if smoke {
        &[(64, 1, 2)]
    } else {
        &[(64, 2, 2), (192, 4, 5)]
    };

    let grids: Vec<GridJson> = grid_plan
        .iter()
        .map(|&(side, n, reps)| bench_grid(side, n, reps, smoke))
        .collect();
    let microkernel = bench_microkernel(smoke);

    let json = BenchJson {
        bench: "sscn_engine",
        workload: format!(
            "SS U-Net ({} Sub-Conv layers) on ShapeNet-like occupancy grids",
            net.subconv_layers().len()
        ),
        mode: if smoke { "smoke" } else { "full" },
        grids,
        microkernel,
    };

    std::fs::write(
        "BENCH_sscn.json",
        serde_json::to_string_pretty(&json).expect("serializable") + "\n",
    )
    .expect("write BENCH_sscn.json");
    let mirrored = report::write_json("BENCH_sscn", &json).expect("report dir writable");
    println!("wrote BENCH_sscn.json (mirrored at {})", mirrored.display());

    // The ROADMAP gate: blocked flat-cached ≥ 4.5x over direct on 192³
    // (lifted from 4x once the whole-network plan cache landed).
    if !smoke {
        let target = json
            .grids
            .iter()
            .find(|g| g.grid_side == 192)
            .expect("full mode benches the 192^3 workload");
        let blocked = target
            .backends
            .iter()
            .find(|b| b.backend == GemmBackendKind::Blocked.label())
            .expect("blocked backend benched");
        assert!(
            blocked.speedup_cached >= 4.5,
            "blocked cached flat path must be >= 4.5x (mean) over the direct path on 192^3, \
             got {:.2}x",
            blocked.speedup_cached
        );
    }
}
