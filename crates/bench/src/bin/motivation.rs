//! Quantifies the paper's motivating claim (§I–II): a conventional dense
//! CNN accelerator — even with GoSPA-style zero gating — degrades badly on
//! SSCN workloads because it cannot perform the matching operation, while
//! ESCA's zero removing + SDMU restrict all work to the submanifold.
//!
//! Run with `cargo run --release -p esca-bench --bin motivation`.

use esca::{Esca, EscaConfig};
use esca_baselines::DenseAccelModel;
use esca_bench::workloads;
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};

fn main() {
    let cfg = EscaConfig::default();
    let esca = Esca::new(cfg).expect("valid config");
    let dense_gated = DenseAccelModel::default();
    let dense_plain = DenseAccelModel {
        zero_gating: false,
        ..Default::default()
    };

    println!("== motivation: dense CNN accelerator vs ESCA on Sub-Conv layers ==");
    println!("(same 16x16 array, same 270 MHz; dense model traverses the whole grid)");
    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>10} {:>10}",
        "layer", "ESCA cyc", "dense+gate cyc", "dense cyc", "slowdown", "gated %"
    );
    let layers = workloads::unet_subconv_workload(workloads::EVAL_SEEDS[0]);
    let mut total_esca = 0u64;
    let mut total_gated = 0u64;
    for lw in layers.iter().take(5) {
        let qw = QuantizedWeights::auto(&lw.weights, 8, 12).expect("quantizable");
        let qin = quantize_tensor(&lw.input, qw.quant().act);
        let esca_run = esca.run_layer(&qin, &qw, true).expect("fits buffers");
        let gated = dense_gated
            .run_layer(&lw.input, &lw.weights)
            .expect("channels match");
        let plain = dense_plain
            .run_layer(&lw.input, &lw.weights)
            .expect("channels match");
        total_esca += esca_run.stats.total_cycles();
        total_gated += gated.cycles;
        println!(
            "{:<12} {:>12} {:>14} {:>14} {:>9.1}x {:>9.1}",
            lw.name,
            esca_run.stats.total_cycles(),
            gated.cycles,
            plain.cycles,
            gated.cycles as f64 / esca_run.stats.total_cycles() as f64,
            gated.gated_fraction * 100.0
        );
    }
    println!(
        "\naggregate slowdown of the gated dense accelerator vs ESCA: {:.1}x",
        total_gated as f64 / total_esca as f64
    );
    println!(
        "and the dense output DILATES (wrong function for SSCN) — see Fig. 2 / \
         `cargo run --example dilation_demo`"
    );
}
