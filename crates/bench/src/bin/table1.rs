//! Regenerates the paper's **Table I** (analysis of the zero removing
//! strategy): active tiles, all tiles and removing ratio at tile sizes
//! 4³/8³/12³/16³ on ShapeNet-like and NYU-like inputs voxelized to 192³.
//!
//! Run with `cargo run --release -p esca-bench --bin table1`.

use esca_bench::report::{write_json, Table1Json};
use esca_bench::{paper, tables, workloads};

fn main() {
    let shapenet = tables::table1_mean(workloads::shapenet_voxelized);
    tables::print_table1_block("ShapeNet-like", &shapenet, &paper::TABLE1_SHAPENET);

    let nyu = tables::table1_mean(workloads::nyu_voxelized);
    tables::print_table1_block("NYU-like", &nyu, &paper::TABLE1_NYU);

    let mut rows = Vec::new();
    for (dataset, measured, reference) in [
        ("shapenet-like", &shapenet, &paper::TABLE1_SHAPENET),
        ("nyu-like", &nyu, &paper::TABLE1_NYU),
    ] {
        for (m, p) in measured.iter().zip(reference.iter()) {
            rows.push(Table1Json {
                dataset: dataset.into(),
                tile: m.tile,
                active_measured: m.active,
                active_paper: p.active,
                all_tiles: m.all,
                ratio_measured: m.ratio,
                ratio_paper: p.ratio,
            });
        }
    }
    match write_json("table1", &rows) {
        Ok(path) => println!("json report: {}", path.display()),
        Err(e) => eprintln!("failed to write json report: {e}"),
    }

    let s0 = workloads::shapenet_voxelized(workloads::EVAL_SEEDS[0]);
    let n0 = workloads::nyu_voxelized(workloads::EVAL_SEEDS[0]);
    println!(
        "sample sparsity: shapenet-like {:.4}%, nyu-like {:.4}% (paper: ~99.9%)",
        s0.sparsity() * 100.0,
        n0.sparsity() * 100.0
    );
}
