//! End-to-end system experiment (beyond the paper's per-layer numbers):
//! a full SS U-Net inference with Sub-Conv layers on the ESCA model and
//! host-side layers (strided convs, concat, head, marshalling) on a
//! PS cost model — where does the time actually go in deployment?
//!
//! Run with `cargo run --release -p esca-bench --bin endtoend`.

use esca::system::{run_unet, HostModel};
use esca::{Esca, EscaConfig};
use esca_bench::workloads;

fn main() {
    let cfg = EscaConfig::default();
    let esca = Esca::new(cfg).expect("valid config");
    let host = HostModel::default();
    let net = workloads::unet();

    println!("== end-to-end SS U-Net inference (ESCA + host pipeline) ==");
    println!(
        "{:>6} | {:>8} | {:>9} | {:>9} | {:>9} | {:>10} | {:>7}",
        "seed", "voxels", "accel ms", "host ms", "marshal", "total ms", "accel %"
    );
    let mut total_s = 0.0;
    let mut accel_s = 0.0;
    for &seed in workloads::EVAL_SEEDS.iter().take(4) {
        let input = workloads::shapenet_voxelized(seed);
        let run = run_unet(&net, &esca, &host, &input, 8).expect("pipeline runs");
        println!(
            "{:>6} | {:>8} | {:>9.3} | {:>9.3} | {:>9.3} | {:>10.3} | {:>6.1}%",
            seed,
            input.nnz(),
            run.accel_s * 1e3,
            run.host_compute_s * 1e3,
            run.host_marshal_s * 1e3,
            run.end_to_end_s() * 1e3,
            run.accel_fraction() * 100.0
        );
        total_s += run.end_to_end_s();
        accel_s += run.accel_s;
    }
    println!(
        "\nmean inference latency {:.3} ms; the accelerator accounts for {:.1}% of it",
        total_s / 4.0 * 1e3,
        accel_s / total_s * 100.0
    );
    println!(
        "(the paper reports per-Sub-Conv-layer times and whole-network GOPS; this view \
         adds the host side of a real deployment)"
    );
}
