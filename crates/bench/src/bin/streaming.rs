//! Streaming-inference experiment (the deployment the paper's
//! introduction motivates: AR/VR and autonomous driving process point
//! cloud *streams*): run a batch of frames through the Sub-Conv stack on
//! the parallel [`StreamingSession`] engine, sweeping the worker count.
//!
//! The per-frame simulated cycle counts are bit-identical across worker
//! counts (asserted below); workers change only host wall-clock. The
//! deployment numbers that scale with parallelism are the *modeled*
//! multi-engine frame rates, which are pure functions of the cycle model.
//!
//! Run with `cargo run --release -p esca-bench --bin streaming`.

use esca::streaming::StreamingSession;
use esca::{Esca, EscaConfig};
use esca_bench::workloads;

fn main() {
    let cfg = EscaConfig::default();
    let n_frames = 8;
    let stack = workloads::streaming_stack(3);
    let frames = workloads::streaming_frames(
        workloads::EVAL_SEEDS[0],
        n_frames,
        workloads::GRID_SIDE,
        &stack,
    );

    println!("== streaming inference: {n_frames} frames, weights loaded once ==");
    println!(
        "{:>7} | {:>9} | {:>9} | {:>9} | {:>9} | {:>8}",
        "workers", "wall fps", "p50 ms", "p99 ms", "agg GOPS", "modeled"
    );
    let mut reference: Option<Vec<esca::CycleStats>> = None;
    for workers in [1usize, 2, 4, 8] {
        let esca = Esca::new(cfg).expect("valid config");
        let session = StreamingSession::new(esca, stack.clone(), workers);
        let report = session.run_batch(&frames).expect("stream runs");
        match &reference {
            None => reference = Some(report.per_frame.clone()),
            Some(r) => assert_eq!(
                r, &report.per_frame,
                "cycle accounting must not depend on worker count"
            ),
        }
        let modeled = report.modeled(workers);
        println!(
            "{:>7} | {:>9.2} | {:>9.3} | {:>9.3} | {:>9.2} | {:>5.1}/s ({:.2}x)",
            workers,
            report.wall_fps(),
            report.latency_percentile(50.0).as_secs_f64() * 1e3,
            report.latency_percentile(99.0).as_secs_f64() * 1e3,
            report.aggregate_gops(),
            modeled.frames_per_s,
            modeled.speedup
        );
    }

    let report = {
        let esca = Esca::new(cfg).expect("valid config");
        StreamingSession::new(esca, stack.clone(), 4)
            .run_batch(&frames)
            .expect("stream runs")
    };
    let per_frame = &report.per_frame;
    println!(
        "\n{:>6} | {:>10} | {:>10} | {:>9}",
        "frame", "cycles", "ms", "GOPS"
    );
    for (i, s) in per_frame.iter().enumerate() {
        println!(
            "{:>6} | {:>10} | {:>10.3} | {:>9.2}",
            i,
            s.total_cycles(),
            s.time_s(cfg.clock_mhz) * 1e3,
            s.effective_gops(cfg.clock_mhz)
        );
    }
    let first = per_frame[0].total_cycles();
    let steady: u64 =
        per_frame[1..].iter().map(|s| s.total_cycles()).sum::<u64>() / (n_frames as u64 - 1);
    let fps = cfg.clock_mhz * 1e6 / steady as f64;
    println!(
        "\nfirst frame {first} cycles (weight load), steady state {steady} cycles -> {fps:.1} fps per engine"
    );
    let m8 = report.modeled(8);
    assert!(
        m8.speedup >= 2.0,
        "8 modeled engines should be >= 2x over one, got {:.2}x",
        m8.speedup
    );
    println!(
        "modeled deployments: {}",
        [1usize, 2, 4, 8]
            .map(|e| {
                let m = report.modeled(e);
                format!(
                    "{e} engines = {:.1} fps ({:.2}x)",
                    m.frames_per_s, m.speedup
                )
            })
            .join(", ")
    );
}
