//! Streaming-inference experiment (the deployment the paper's
//! introduction motivates: AR/VR and autonomous driving process point
//! cloud *streams*): run a sequence of frames through the Sub-Conv stack
//! with weights loaded once, and report sustained frame rate.
//!
//! Run with `cargo run --release -p esca-bench --bin streaming`.

use esca::{Esca, EscaConfig};
use esca_bench::workloads;
use esca_pointcloud::{synthetic, transform, voxelize};
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
use esca_tensor::Extent3;

fn main() {
    let cfg = EscaConfig::default();
    let esca = Esca::new(cfg).expect("valid config");

    // A "moving object" stream: the same object slowly rotating, one
    // voxelization per frame.
    let base = synthetic::shapenet_like(workloads::EVAL_SEEDS[0], &Default::default());
    let grid = Extent3::cube(192);
    let n_frames = 8;

    // Layer stack: the finest-resolution Sub-Conv layers of the U-Net
    // (the accelerator-resident part between host downsamplings).
    let unet_layers = workloads::unet_subconv_workload(workloads::EVAL_SEEDS[0]);
    let stack: Vec<(QuantizedWeights, bool)> = unet_layers
        .iter()
        .take(3)
        .map(|lw| {
            (
                QuantizedWeights::auto(&lw.weights, 8, 12).expect("quantizable"),
                true,
            )
        })
        .collect();
    // The stream feeds the stem's input; chain shapes must match, so keep
    // only layers whose input channels chain from 1 (stem -> enc0 convs).
    let frames: Vec<_> = (0..n_frames)
        .map(|i| {
            let rotated = transform::rotate_z(&base, 0.1 * i as f32, [96.0, 96.0, 96.0]);
            let occ = voxelize::voxelize_occupancy(&rotated, grid);
            quantize_tensor(&occ, stack[0].0.quant().act)
        })
        .collect();

    let per_frame = esca
        .run_network_stream(&frames, &stack)
        .expect("stream runs");
    println!(
        "== streaming inference: {} frames, weights loaded once ==",
        n_frames
    );
    println!(
        "{:>6} | {:>10} | {:>10} | {:>9}",
        "frame", "cycles", "ms", "GOPS"
    );
    for (i, s) in per_frame.iter().enumerate() {
        println!(
            "{:>6} | {:>10} | {:>10.3} | {:>9.2}",
            i,
            s.total_cycles(),
            s.time_s(cfg.clock_mhz) * 1e3,
            s.effective_gops(cfg.clock_mhz)
        );
    }
    let first = per_frame[0].total_cycles();
    let steady: u64 =
        per_frame[1..].iter().map(|s| s.total_cycles()).sum::<u64>() / (n_frames as u64 - 1);
    let fps = cfg.clock_mhz * 1e6 / steady as f64;
    println!(
        "\nfirst frame {} cycles (weight load), steady state {} cycles -> {:.1} fps on this stack",
        first, steady, fps
    );
}
