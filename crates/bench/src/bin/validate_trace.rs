//! CI validator for exported telemetry artifacts.
//!
//! Usage: `validate_trace <trace.json> [metrics.json]`
//!
//! Asserts that `trace.json` is valid Chrome trace-event JSON in the
//! object format: a non-empty `traceEvents` array in which every event
//! carries `"ph": "X"`, numeric `ts`/`dur`/`pid`/`tid` and a string
//! `name` — exactly the subset chrome://tracing, ui.perfetto.dev and
//! `trace_processor` all accept. When a second path is given it must
//! parse as an `esca_telemetry::TelemetrySnapshot` with at least one
//! cycle-domain series. Exits nonzero naming the first offending
//! file/field, so CI failures point at the broken artifact directly.

use esca_telemetry::TelemetrySnapshot;
use serde_json::Value;

fn fail(msg: &str) -> ! {
    eprintln!("validate_trace: {msg}");
    std::process::exit(1);
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => fail(&format!("{path}: {e}")),
    }
}

fn validate_trace(path: &str) {
    let value: Value = match serde_json::from_str(&read(path)) {
        Ok(v) => v,
        Err(e) => fail(&format!("{path}: not JSON: {e}")),
    };
    let Some(events) = value.field("traceEvents").as_seq() else {
        fail(&format!("{path}: missing `traceEvents` array"));
    };
    if events.is_empty() {
        fail(&format!("{path}: `traceEvents` is empty"));
    }
    for (i, ev) in events.iter().enumerate() {
        if ev.field("ph").as_str() != Some("X") {
            fail(&format!("{path}: event {i}: `ph` is not the string \"X\""));
        }
        for key in ["ts", "dur", "pid", "tid"] {
            if !matches!(ev.field(key), Value::U64(_)) {
                fail(&format!(
                    "{path}: event {i}: `{key}` missing or not an unsigned number"
                ));
            }
        }
        if ev.field("name").as_str().is_none() {
            fail(&format!(
                "{path}: event {i}: `name` missing or not a string"
            ));
        }
    }
    println!("{path}: {} trace events ok", events.len());
}

fn validate_metrics(path: &str) {
    let snap: TelemetrySnapshot = match serde_json::from_str(&read(path)) {
        Ok(s) => s,
        Err(e) => fail(&format!("{path}: not a TelemetrySnapshot: {e}")),
    };
    let cycle_series =
        snap.cycle.counters.len() + snap.cycle.gauges.len() + snap.cycle.histograms.len();
    if cycle_series == 0 {
        fail(&format!("{path}: no cycle-domain series recorded"));
    }
    println!("{path}: {cycle_series} cycle-domain series ok");
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(trace_path) = args.next() else {
        fail("usage: validate_trace <trace.json> [metrics.json]");
    };
    validate_trace(&trace_path);
    if let Some(metrics_path) = args.next() {
        validate_metrics(&metrics_path);
    }
}
