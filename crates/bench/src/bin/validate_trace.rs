//! CI validator for exported telemetry artifacts.
//!
//! Usage: `validate_trace <trace.json> [metrics.json]`
//!
//! Asserts that `trace.json` is valid Chrome trace-event JSON in the
//! object format: a non-empty `traceEvents` array in which every event
//! carries `"ph": "X"`, numeric `ts`/`dur`/`pid`/`tid`, a string `name`
//! and a string `cat` (category) — exactly the subset chrome://tracing,
//! ui.perfetto.dev and `trace_processor` all accept — and in which `ts`
//! never decreases within one `(pid, tid)` track (Perfetto tolerates
//! out-of-order slices poorly, so nested span exports must emit tracks
//! in file order). When a second path is given it must parse as an
//! `esca_telemetry::TelemetrySnapshot` with at least one cycle-domain
//! series. Exits nonzero naming the first offending file/field, so CI
//! failures point at the broken artifact directly.

use esca_telemetry::TelemetrySnapshot;
use serde_json::Value;

fn fail(msg: &str) -> ! {
    eprintln!("validate_trace: {msg}");
    std::process::exit(1);
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => fail(&format!("{path}: {e}")),
    }
}

fn validate_trace(path: &str) {
    let value: Value = match serde_json::from_str(&read(path)) {
        Ok(v) => v,
        Err(e) => fail(&format!("{path}: not JSON: {e}")),
    };
    let Some(events) = value.field("traceEvents").as_seq() else {
        fail(&format!("{path}: missing `traceEvents` array"));
    };
    if events.is_empty() {
        fail(&format!("{path}: `traceEvents` is empty"));
    }
    // Last-seen ts per (pid, tid) track, in file order.
    let mut track_ts: std::collections::HashMap<(u64, u64), u64> = std::collections::HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        if ev.field("ph").as_str() != Some("X") {
            fail(&format!("{path}: event {i}: `ph` is not the string \"X\""));
        }
        for key in ["ts", "dur", "pid", "tid"] {
            if !matches!(ev.field(key), Value::U64(_)) {
                fail(&format!(
                    "{path}: event {i}: `{key}` missing or not an unsigned number"
                ));
            }
        }
        for key in ["name", "cat"] {
            if ev.field(key).as_str().is_none() {
                fail(&format!(
                    "{path}: event {i}: `{key}` missing or not a string"
                ));
            }
        }
        let num = |key: &str| match ev.field(key) {
            Value::U64(n) => *n,
            _ => 0,
        };
        let (pid, tid, ts) = (num("pid"), num("tid"), num("ts"));
        if let Some(prev) = track_ts.get(&(pid, tid)) {
            if ts < *prev {
                fail(&format!(
                    "{path}: event {i}: `ts` {ts} decreases within track (pid {pid}, tid {tid}) after {prev}"
                ));
            }
        }
        track_ts.insert((pid, tid), ts);
    }
    println!(
        "{path}: {} trace events ok across {} tracks",
        events.len(),
        track_ts.len()
    );
}

fn validate_metrics(path: &str) {
    let snap: TelemetrySnapshot = match serde_json::from_str(&read(path)) {
        Ok(s) => s,
        Err(e) => fail(&format!("{path}: not a TelemetrySnapshot: {e}")),
    };
    let cycle_series =
        snap.cycle.counters.len() + snap.cycle.gauges.len() + snap.cycle.histograms.len();
    if cycle_series == 0 {
        fail(&format!("{path}: no cycle-domain series recorded"));
    }
    println!("{path}: {cycle_series} cycle-domain series ok");
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(trace_path) = args.next() else {
        fail("usage: validate_trace <trace.json> [metrics.json]");
    };
    validate_trace(&trace_path);
    if let Some(metrics_path) = args.next() {
        validate_metrics(&metrics_path);
    }
}
