//! Regenerates the paper's **Table III** (comparison with other point
//! cloud implementations): power, effective GOPS and GOPS/W for the GPU
//! model, the literature comparator \[19\], and the simulated ESCA, all on
//! the SS U-Net / ShapeNet-like workload.
//!
//! Run with `cargo run --release -p esca-bench --bin table3`.

use esca::EscaConfig;
use esca_bench::report::{write_json, ComparisonJson};
use esca_bench::{tables, workloads};

fn main() {
    let cfg = EscaConfig::default();
    let cmp = tables::compare_platforms(workloads::EVAL_SEEDS[0], &cfg);
    tables::print_table3(&cmp);

    let rows: Vec<ComparisonJson> = [
        (
            &cmp.cpu_point,
            cmp.rows.iter().map(|r| r.cpu_s).sum::<f64>(),
        ),
        (
            &cmp.gpu_point,
            cmp.rows.iter().map(|r| r.gpu_s).sum::<f64>(),
        ),
        (
            &cmp.esca_point,
            cmp.rows.iter().map(|r| r.esca_s).sum::<f64>(),
        ),
    ]
    .into_iter()
    .map(|(p, t)| ComparisonJson {
        device: p.device.clone(),
        power_w: p.power_w,
        gops: p.gops,
        gops_per_w: p.gops_per_w(),
        total_time_s: t,
    })
    .collect();
    match write_json("table3", &rows) {
        Ok(path) => println!("json report: {}", path.display()),
        Err(e) => eprintln!("failed to write json report: {e}"),
    }
    if std::env::args().any(|a| a == "--multi") {
        let summary = tables::compare_platforms_multi(&workloads::EVAL_SEEDS[..4], &cfg);
        tables::print_multi_seed(&summary);
    }

    let s = &cmp.esca_total;
    println!(
        "ESCA detail: {} cycles total ({} pipeline, {} dram stall, {} overhead), {:.1}% array busy, util {:.1}%",
        s.total_cycles(),
        s.pipeline_cycles,
        s.dram_stall_cycles,
        s.tile_overhead_cycles + s.layer_overhead_cycles,
        s.compute_occupancy() * 100.0,
        s.array_utilization() * 100.0
    );
}
