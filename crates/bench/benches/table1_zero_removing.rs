//! Regenerates **Table I** (zero removing analysis) and benchmarks the
//! tile classification / zero removing kernels that produce it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esca::zero_removing::ZeroRemovingUnit;
use esca_bench::{paper, tables, workloads};
use esca_sscn::quant::quantize_tensor;
use esca_tensor::{QuantParams, TileGrid, TileShape};

fn bench(c: &mut Criterion) {
    // --- Regenerate the table (printed into the bench log).
    let shapenet = tables::table1_mean(workloads::shapenet_voxelized);
    tables::print_table1_block("ShapeNet-like", &shapenet, &paper::TABLE1_SHAPENET);
    let nyu = tables::table1_mean(workloads::nyu_voxelized);
    tables::print_table1_block("NYU-like", &nyu, &paper::TABLE1_NYU);

    // --- Benchmark the kernels.
    let t = workloads::shapenet_voxelized(workloads::EVAL_SEEDS[0]);
    let mask = t.occupancy_mask();
    let qt = quantize_tensor(&t, QuantParams::new(8).unwrap());

    let mut g = c.benchmark_group("table1");
    for side in tables::TABLE1_TILE_SIDES {
        g.bench_with_input(BenchmarkId::new("classify", side), &side, |b, &side| {
            let grid = TileGrid::new(t.extent(), TileShape::cube(side));
            b.iter(|| grid.classify(&mask));
        });
    }
    g.bench_function("zero_removing_unit_8cube", |b| {
        let unit = ZeroRemovingUnit::default();
        b.iter(|| unit.run(&qt, TileShape::cube(8)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
