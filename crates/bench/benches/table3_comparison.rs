//! Regenerates **Table III** (platform comparison on the SS U-Net) and
//! benchmarks the simulator's layer-execution throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use esca::{Esca, EscaConfig};
use esca_bench::{tables, workloads};
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};

fn bench(c: &mut Criterion) {
    let cfg = EscaConfig::default();
    let cmp = tables::compare_platforms(workloads::EVAL_SEEDS[0], &cfg);
    tables::print_table3(&cmp);

    // Benchmark the simulator on a representative mid-network layer.
    let layers = workloads::unet_subconv_workload(workloads::EVAL_SEEDS[0]);
    let layer = &layers[1]; // enc0.conv0: 16 -> 16 at full resolution
    let qw = QuantizedWeights::auto(&layer.weights, 8, 12).unwrap();
    let qin = quantize_tensor(&layer.input, qw.quant().act);
    let esca = Esca::new(cfg).unwrap();
    c.bench_function("table3/esca_run_layer_enc0", |b| {
        b.iter(|| esca.run_layer(&qin, &qw, true).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    targets = bench
}
criterion_main!(benches);
