//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! * tile size (the paper evaluates 4³…16³ for occupancy; here we also
//!   measure the *cycle* impact on the accelerator);
//! * FIFO depth (backpressure vs area);
//! * computing-array parallelism (DSE: performance vs resources).
//!
//! Each ablation prints a small table into the bench log and benchmarks
//! one representative configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use esca::area::ResourceEstimate;
use esca::power::PowerModel;
use esca::{Esca, EscaConfig};
use esca_bench::workloads;
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
use esca_tensor::TileShape;

fn bench(c: &mut Criterion) {
    let layers = workloads::unet_subconv_workload(workloads::EVAL_SEEDS[0]);
    let layer = &layers[1];
    let qw = QuantizedWeights::auto(&layer.weights, 8, 12).unwrap();
    let qin = quantize_tensor(&layer.input, qw.quant().act);

    println!("== ablation: tile size vs cycles (enc0.conv0 layer) ==");
    for side in [4u32, 8, 12, 16] {
        let mut cfg = EscaConfig::default();
        cfg.tile = TileShape::cube(side);
        let run = Esca::new(cfg).unwrap().run_layer(&qin, &qw, true).unwrap();
        println!(
            "tile {side:>2}³: {:>9} cycles ({:>7} scan sites, {:>4} active tiles, {:>6} stall)",
            run.stats.total_cycles(),
            run.stats.scanned_sites,
            run.stats.active_tiles,
            run.stats.stall_cycles
        );
    }

    println!("== ablation: FIFO depth vs stalls ==");
    for depth in [1usize, 2, 4, 8, 16, 32] {
        let mut cfg = EscaConfig::default();
        cfg.fifo_depth = depth;
        let run = Esca::new(cfg).unwrap().run_layer(&qin, &qw, true).unwrap();
        println!(
            "depth {depth:>2}: {:>9} pipeline cycles, {:>7} stall cycles, peak occupancy {}",
            run.stats.pipeline_cycles, run.stats.stall_cycles, run.stats.peak_fifo_occupancy
        );
    }

    println!("== ablation: array parallelism DSE (full U-Net workload) ==");
    for (ic, oc) in [(8usize, 8usize), (16, 16), (32, 32)] {
        let mut cfg = EscaConfig::default();
        cfg.ic_parallel = ic;
        cfg.oc_parallel = oc;
        let esca = Esca::new(cfg).unwrap();
        let mut total = esca::CycleStats::default();
        for lw in &layers {
            let qw = QuantizedWeights::auto(&lw.weights, 8, 12).unwrap();
            let qi = quantize_tensor(&lw.input, qw.quant().act);
            let run = esca.run_layer(&qi, &qw, true).unwrap();
            total += &run.stats;
        }
        let power = PowerModel::default().report(&total, &cfg);
        let est = ResourceEstimate::for_config(&cfg);
        println!(
            "{ic:>2}x{oc:<2}: {:>7.2} GOPS  {:>5.2} W  {:>6.2} GOPS/W  {:>4} DSP  {:>6} LUT",
            power.gops, power.avg_power_w, power.gops_per_w, est.dsp, est.lut
        );
    }

    println!("== ablation: quantization bits vs error (vs f32 reference) ==");
    {
        let float_ref = esca_sscn::conv::submanifold_conv3d(&layer.input, &layer.weights).unwrap();
        for act_bits in [4u8, 6, 8, 10, 12] {
            let esca = Esca::new(EscaConfig::default()).unwrap();
            let (_, deq) = esca
                .run_layer_f32(&layer.input, &layer.weights, false, act_bits)
                .unwrap();
            let err = deq.max_abs_diff(&float_ref).unwrap();
            println!("act frac bits {act_bits:>2}: max abs error {err:.6}");
        }
    }

    println!("== ablation: input sparsity vs effective GOPS (uniform random, 64³, 16->16) ==");
    {
        use esca_pointcloud::synthetic::uniform_random;
        use esca_pointcloud::voxelize::voxelize_occupancy;
        use esca_tensor::Extent3;
        let w16 = esca_sscn::weights::ConvWeights::seeded(3, 16, 16, 77);
        let qw16 = QuantizedWeights::auto(&w16, 8, 12).unwrap();
        for n_points in [200usize, 1000, 5000, 20000] {
            let cloud = uniform_random(5, n_points, [32.0; 3], 60.0);
            let occ = voxelize_occupancy(&cloud, Extent3::cube(64));
            let mut lifted = esca_tensor::SparseTensor::<f32>::new(occ.extent(), 16);
            for (c, f) in occ.iter() {
                let feats: Vec<f32> = (0..16).map(|i| f[0] * 0.05 * (i as f32 + 1.0)).collect();
                lifted.insert(c, &feats).unwrap();
            }
            let qi = quantize_tensor(&lifted, qw16.quant().act);
            let run = Esca::new(EscaConfig::default())
                .unwrap()
                .run_layer(&qi, &qw16, true)
                .unwrap();
            println!(
                "nnz {:>6} (sparsity {:>7.3}%): {:>7.2} GOPS, mean match group {:>5.2}, {:>4} active tiles",
                occ.nnz(),
                occ.sparsity() * 100.0,
                run.stats.effective_gops(270.0),
                run.stats.mean_match_group(),
                run.stats.active_tiles
            );
        }
    }

    c.bench_function("ablations/layer_at_4cube_tiles", |b| {
        let mut cfg = EscaConfig::default();
        cfg.tile = TileShape::cube(4);
        let esca = Esca::new(cfg).unwrap();
        b.iter(|| esca.run_layer(&qin, &qw, true).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets = bench
}
criterion_main!(benches);
