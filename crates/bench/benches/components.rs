//! Component micro-benchmarks: the individual kernels underlying the
//! system (encoding, window queries, golden convolutions, full-layer
//! simulation). These have no direct counterpart in the paper but keep the
//! simulator's own performance in check.

use criterion::{criterion_group, criterion_main, Criterion};
use esca::encode::EncodedFeatureMap;
use esca::{Esca, EscaConfig};
use esca_bench::workloads;
use esca_sscn::quant::{quantize_tensor, submanifold_conv3d_q, QuantizedWeights};
use esca_sscn::{conv, ops};
use esca_tensor::{LineCsr, QuantParams, TileShape};

fn bench(c: &mut Criterion) {
    let layers = workloads::unet_subconv_workload(workloads::EVAL_SEEDS[0]);
    let layer = &layers[1]; // 16 -> 16 full-resolution layer
    let qw = QuantizedWeights::auto(&layer.weights, 8, 12).unwrap();
    let qin = quantize_tensor(&layer.input, qw.quant().act);

    c.bench_function("components/encode_feature_map", |b| {
        b.iter(|| EncodedFeatureMap::encode(&qin, TileShape::cube(8)).unwrap());
    });

    c.bench_function("components/line_csr_build", |b| {
        b.iter(|| LineCsr::from_sparse(&qin));
    });

    let csr = LineCsr::from_sparse(&qin);
    c.bench_function("components/line_csr_window_queries", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &coord in qin.coords() {
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        total += csr
                            .window(coord.x + dx, coord.y + dy, coord.z - 1, coord.z + 2)
                            .len();
                    }
                }
            }
            total
        });
    });

    c.bench_function("components/golden_conv_f32", |b| {
        b.iter(|| conv::submanifold_conv3d(&layer.input, &layer.weights).unwrap());
    });

    c.bench_function("components/golden_conv_quantized", |b| {
        b.iter(|| submanifold_conv3d_q(&qin, &qw, true).unwrap());
    });

    c.bench_function("components/count_matches", |b| {
        b.iter(|| ops::count_matches(&layer.input, 3));
    });

    c.bench_function("components/full_layer_simulation", |b| {
        let esca = Esca::new(EscaConfig::default()).unwrap();
        b.iter(|| esca.run_layer(&qin, &qw, true).unwrap());
    });

    // Quantization path cost.
    c.bench_function("components/quantize_tensor", |b| {
        let p = QuantParams::new(8).unwrap();
        b.iter(|| quantize_tensor(&layer.input, p));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets = bench
}
criterion_main!(benches);
