//! Regenerates **Table II** (resource utilization) from the area model and
//! benchmarks the estimator across a configuration sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use esca::area::ResourceEstimate;
use esca::EscaConfig;
use esca_bench::tables;

fn bench(c: &mut Criterion) {
    tables::print_table2(&EscaConfig::default());

    c.bench_function("table2/resource_estimate", |b| {
        let cfg = EscaConfig::default();
        b.iter(|| ResourceEstimate::for_config(std::hint::black_box(&cfg)));
    });

    // Print the design-space corners for reference.
    println!("== resource model across parallelism (ablation reference) ==");
    for (ic, oc) in [(8, 8), (16, 16), (32, 16), (32, 32)] {
        let mut cfg = EscaConfig::default();
        cfg.ic_parallel = ic;
        cfg.oc_parallel = oc;
        let est = ResourceEstimate::for_config(&cfg);
        println!(
            "{:>2}x{:<2}: LUT {:>6}  FF {:>6}  BRAM {:>6.1}  DSP {:>5}",
            ic, oc, est.lut, est.ff, est.bram36, est.dsp
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
