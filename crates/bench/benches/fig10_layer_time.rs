//! Regenerates **Fig. 10** (per-layer time: CPU vs GPU vs ESCA) and
//! benchmarks the three platform models' evaluation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use esca::EscaConfig;
use esca_baselines::{CpuModel, GpuModel};
use esca_bench::{tables, workloads};

fn bench(c: &mut Criterion) {
    let cfg = EscaConfig::default();
    let cmp = tables::compare_platforms(workloads::EVAL_SEEDS[0], &cfg);
    tables::print_fig10(&cmp);

    let layers = workloads::unet_subconv_workload(workloads::EVAL_SEEDS[0]);
    let layer = &layers[1];
    c.bench_function("fig10/cpu_model_layer", |b| {
        let m = CpuModel::default();
        b.iter(|| m.run_layer(&layer.input, &layer.weights).unwrap());
    });
    c.bench_function("fig10/gpu_model_layer", |b| {
        let m = GpuModel::default();
        b.iter(|| m.run_layer(&layer.input, &layer.weights).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    targets = bench
}
criterion_main!(benches);
