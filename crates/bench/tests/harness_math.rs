//! Unit tests for the bench harness's aggregation math (speedups,
//! multi-seed statistics) on synthetic rows — the table binaries must
//! never silently compute a wrong ratio.

use esca::EscaConfig;
use esca_bench::tables::{self, Fig10Row};

fn rows() -> Vec<Fig10Row> {
    vec![
        Fig10Row {
            name: "a".into(),
            effective_ops: 1_000,
            cpu_s: 8.0,
            gpu_s: 2.0,
            esca_s: 1.0,
        },
        Fig10Row {
            name: "b".into(),
            effective_ops: 2_000,
            cpu_s: 16.0,
            gpu_s: 4.0,
            esca_s: 2.0,
        },
    ]
}

#[test]
fn speedups_are_total_time_ratios() {
    let cmp = tables::Comparison {
        rows: rows(),
        esca_total: esca::CycleStats::default(),
        esca_point: point("esca", 3.0, 20.0),
        gpu_point: point("gpu", 90.0, 10.0),
        cpu_point: point("cpu", 120.0, 2.0),
    };
    assert!((cmp.speedup_vs_cpu() - 8.0).abs() < 1e-12);
    assert!((cmp.speedup_vs_gpu() - 2.0).abs() < 1e-12);
}

fn point(name: &str, power_w: f64, gops: f64) -> esca_baselines::report::PlatformPoint {
    esca_baselines::report::PlatformPoint {
        device: name.into(),
        freq_mhz: None,
        model: "m".into(),
        precision: "p".into(),
        power_w,
        gops,
    }
}

#[test]
fn table1_tile_sides_match_paper() {
    assert_eq!(tables::TABLE1_TILE_SIDES, [4, 8, 12, 16]);
}

#[test]
fn paper_constants_are_internally_consistent() {
    use esca_bench::paper;
    // GOPS/W columns equal GOPS / W within rounding.
    for e in [paper::TABLE3_GPU, paper::TABLE3_REF19, paper::TABLE3_ESCA] {
        let derived = e.gops / e.power_w;
        assert!(
            (derived - e.gops_per_w).abs() / e.gops_per_w < 0.05,
            "{}: {derived} vs {}",
            e.device,
            e.gops_per_w
        );
    }
    // Table II utilization percentages match the stated device totals.
    let lut_pct = paper::TABLE2.lut as f64 / paper::ZCU102_LUT_TOTAL as f64;
    assert!((lut_pct - 0.0643).abs() < 0.001);
    let bram_pct = paper::TABLE2.bram / paper::ZCU102_BRAM_TOTAL;
    assert!((bram_pct - 0.4008).abs() < 0.001);
}

#[test]
fn mean_std_math() {
    let (m, s) = tables::mean_std(&[1.0, 2.0, 3.0]);
    assert!((m - 2.0).abs() < 1e-12);
    assert!((s - 1.0).abs() < 1e-12);
    // Identical samples: zero spread.
    let (m, s) = tables::mean_std(&[5.0, 5.0, 5.0, 5.0]);
    assert_eq!(m, 5.0);
    assert_eq!(s, 0.0);
    // Single sample: defined, zero std.
    let (m, s) = tables::mean_std(&[7.0]);
    assert_eq!((m, s), (7.0, 0.0));
}

#[test]
#[ignore = "runs the full comparison pipeline twice; execute with --release"]
fn multi_seed_stats_on_identical_seeds_have_zero_std() {
    let cfg = EscaConfig::default();
    let m = tables::compare_platforms_multi(&[11, 11], &cfg);
    assert!(m.esca_gops.1.abs() < 1e-9);
    assert!(m.speedup_cpu.1.abs() < 1e-9);
    assert!(m.speedup_gpu.1.abs() < 1e-9);
}
