//! Subcommand implementations.

use crate::args::Args;
use crate::CliError;
use esca::admission::{
    select_operating_point, AdmissionConfig, Arrival, SloTarget, TenantQuota, DEGRADE_DISABLED,
};
use esca::dse::{pareto_front, sweep, DseWorkload, SweepAxes};
use esca::resilience::{register_panic_dump, unregister_panic_dump, FaultClass, FaultConfig};
use esca::streaming::StreamingSession;
use esca::{CycleStats, Esca, EscaConfig, LayerTelemetry};
use esca_bench::{paper, tables, workloads};
use esca_pointcloud::{io, synthetic, voxelize, PointCloud};
use esca_sscn::gemm::GemmBackendKind;
use esca_sscn::plan::PlanCache;
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
use esca_telemetry::serve::{http_get, MetricsServer, ObservabilityHub, OperatingPoint};
use esca_telemetry::{Registry, TelemetrySnapshot};
use esca_tensor::{Extent3, SparseTensor, TileGrid, TileShape};
use serde::Deserialize;
use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;

fn cmd_err<E: std::fmt::Display>(e: E) -> CliError {
    CliError::Command(e.to_string())
}

/// Writes an exported artifact and tells the user where it went.
fn write_text(path: &str, text: &str) -> Result<(), CliError> {
    std::fs::write(path, text).map_err(cmd_err)?;
    println!("wrote {path}");
    Ok(())
}

/// Generates the requested synthetic cloud.
fn make_cloud(dataset: &str, seed: u64) -> Result<PointCloud, CliError> {
    match dataset {
        "shapenet" => Ok(synthetic::shapenet_like(
            seed,
            &synthetic::ShapeNetConfig::default(),
        )),
        "nyu" => Ok(synthetic::nyu_like(seed, &synthetic::NyuConfig::default())),
        other => Err(CliError::Command(format!(
            "unknown dataset {other:?} (expected shapenet or nyu)"
        ))),
    }
}

/// `esca generate --dataset shapenet --seed 7 --out object.xyz`
pub fn generate(args: &Args) -> Result<(), CliError> {
    let dataset = args.get("dataset").unwrap_or("shapenet");
    let seed: u64 = args.get_or("seed", 7)?;
    let cloud = make_cloud(dataset, seed)?;
    match args.get("out") {
        Some(path) => {
            let file = File::create(path).map_err(cmd_err)?;
            io::write_xyz(&cloud, BufWriter::new(file)).map_err(cmd_err)?;
            println!("wrote {} points to {path}", cloud.len());
        }
        None => {
            io::write_xyz(&cloud, std::io::stdout().lock()).map_err(cmd_err)?;
        }
    }
    Ok(())
}

fn load_or_make_grid(args: &Args) -> Result<SparseTensor<f32>, CliError> {
    let grid_side: u32 = args.get_or("grid", 192)?;
    let grid = Extent3::cube(grid_side);
    let cloud = match args.get("input") {
        Some(path) => {
            let file = File::open(path).map_err(cmd_err)?;
            io::read_xyz(file).map_err(cmd_err)?
        }
        None => {
            let dataset = args.get("dataset").unwrap_or("shapenet");
            let seed: u64 = args.get_or("seed", 7)?;
            make_cloud(dataset, seed)?
        }
    };
    Ok(voxelize::voxelize_occupancy(&cloud, grid))
}

/// `esca voxelize --dataset nyu --seed 3 [--grid 192]`
pub fn voxelize(args: &Args) -> Result<(), CliError> {
    let t = load_or_make_grid(args)?;
    println!(
        "grid {}: {} active voxels, {:.4}% sparse",
        t.extent(),
        t.nnz(),
        t.sparsity() * 100.0
    );
    println!("tile analysis (zero removing strategy):");
    for side in [4u32, 8, 12, 16] {
        let report = TileGrid::new(t.extent(), TileShape::cube(side)).classify(&t.occupancy_mask());
        println!(
            "  {side:>2}³: {:>6} active of {:>7} tiles ({:.2}% removed, mean density {:.3})",
            report.active_tiles(),
            report.total_tiles(),
            report.removing_ratio() * 100.0,
            report.mean_active_density()
        );
    }
    Ok(())
}

/// `esca run --seed 11 [--tile 8] [--ic 16] [--oc 16] [--json]
/// [--metrics-out FILE] [--prom-out FILE]`
pub fn run(args: &Args) -> Result<(), CliError> {
    run_workload(args, None)
}

/// `esca bench [--seed N] [--metrics-out metrics.json] [--prom-out FILE]`
///
/// The benchmark entry point: the same SS U-Net Sub-Conv workload as
/// `run`, but the cycle-domain metrics snapshot is always exported
/// (default `metrics.json`).
pub fn bench(args: &Args) -> Result<(), CliError> {
    run_workload(args, Some("metrics.json"))
}

fn run_workload(args: &Args, default_metrics: Option<&str>) -> Result<(), CliError> {
    let seed: u64 = args.get_or("seed", workloads::EVAL_SEEDS[0])?;
    let mut cfg = EscaConfig::default();
    cfg.tile = TileShape::cube(args.get_or("tile", 8u32)?);
    cfg.ic_parallel = args.get_or("ic", 16usize)?;
    cfg.oc_parallel = args.get_or("oc", 16usize)?;
    cfg.validate().map_err(cmd_err)?;
    let esca = Esca::new(cfg).map_err(cmd_err)?;

    let layers = workloads::unet_subconv_workload(seed);
    let mut total = CycleStats::default();
    let mut tele = LayerTelemetry::new();
    println!(
        "SS U-Net Sub-Conv layers on ESCA (seed {seed}, tile {}):",
        cfg.tile
    );
    for lw in &layers {
        let qw = QuantizedWeights::auto(&lw.weights, 8, 12).map_err(cmd_err)?;
        let qin = quantize_tensor(&lw.input, qw.quant().act);
        let run = esca.run_layer(&qin, &qw, true).map_err(cmd_err)?;
        println!(
            "  {:<12} {:>9} cycles  {:>7.2} GOPS  {:>8} matches",
            lw.name,
            run.stats.total_cycles(),
            run.stats.effective_gops(cfg.clock_mhz),
            run.stats.matches
        );
        total += &run.stats;
        tele.merge(&run.telemetry);
    }
    let power = esca::power::PowerModel::default().report(&total, &cfg);
    println!(
        "total: {:.3} ms, {:.2} GOPS, {:.2} W, {:.2} GOPS/W",
        total.time_s(cfg.clock_mhz) * 1e3,
        power.gops,
        power.avg_power_w,
        power.gops_per_w
    );
    if args.flag("json") {
        let json = serde_json::to_string_pretty(&total).map_err(cmd_err)?;
        println!("{json}");
    }
    let metrics_out = args.get("metrics-out").or(default_metrics);
    if metrics_out.is_some() || args.get("prom-out").is_some() {
        // Purely cycle-domain: this path never measures wall time, so the
        // host half of the snapshot stays empty.
        let mut cycle = Registry::new();
        total.record_into(&mut cycle);
        tele.record_into(&mut cycle);
        let snap = TelemetrySnapshot::from_registries(&cycle, &Registry::new());
        if let Some(path) = metrics_out {
            write_text(path, &serde_json::to_string_pretty(&snap).map_err(cmd_err)?)?;
        }
        if let Some(path) = args.get("prom-out") {
            write_text(path, &snap.to_prometheus_text())?;
        }
    }
    Ok(())
}

/// Panic-dump names registered by `stream` (one per export writer, so a
/// rerun replaces rather than stacks them).
const STREAM_DUMPS: [&str; 3] = ["stream-metrics-out", "stream-prom-out", "stream-flight-out"];

/// Registers panic-flush writers for the stream exports: if the process
/// panics mid-campaign, the filtered panic hook writes the hub's last
/// published snapshot and flight ring to the requested paths, so a
/// crashed run still leaves its final state on disk.
fn register_stream_flush(
    hub: &Arc<ObservabilityHub>,
    metrics_out: Option<&str>,
    prom_out: Option<&str>,
    flight_out: Option<&str>,
) {
    // Dump closures swallow their own I/O errors: they run inside the
    // panic hook, where there is no caller left to report to.
    if let Some(path) = metrics_out {
        let hub = Arc::clone(hub);
        let path = path.to_string();
        register_panic_dump(STREAM_DUMPS[0], move || {
            if let Ok(json) = serde_json::to_string_pretty(hub.snapshot().as_ref()) {
                let _ = std::fs::write(&path, json);
            }
        });
    }
    if let Some(path) = prom_out {
        let hub = Arc::clone(hub);
        let path = path.to_string();
        register_panic_dump(STREAM_DUMPS[1], move || {
            let _ = std::fs::write(&path, hub.snapshot().to_prometheus_text());
        });
    }
    if let Some(path) = flight_out {
        let hub = Arc::clone(hub);
        let path = path.to_string();
        register_panic_dump(STREAM_DUMPS[2], move || {
            if let Ok(json) = hub.flight().to_json() {
                let _ = std::fs::write(&path, json);
            }
        });
    }
}

/// Self-scrapes the exposition server with the std-only client used by
/// the integration tests and prints a one-line summary — `make verify`
/// exercises the whole serving path without needing curl.
fn self_scrape(server: &MetricsServer) -> Result<(), CliError> {
    let addr = server.local_addr();
    let metrics = http_get(addr, "/metrics").map_err(cmd_err)?;
    let health = http_get(addr, "/healthz").map_err(cmd_err)?;
    if metrics.status != 200 || metrics.body.is_empty() {
        return Err(CliError::Command(format!(
            "self-scrape of /metrics failed: status {} ({} bytes)",
            metrics.status,
            metrics.body.len()
        )));
    }
    println!(
        "  scrape:      /metrics 200 ({} bytes, {} families), /healthz {} ({})",
        metrics.body.len(),
        metrics
            .body
            .lines()
            .filter(|l| l.starts_with("# TYPE "))
            .count(),
        health.status,
        if health.status == 200 {
            "healthy"
        } else {
            "unhealthy"
        },
    );
    Ok(())
}

/// Shared tail of both `stream` branches: optional self-scrape, flight
/// dump export, and panic-dump cleanup.
fn finish_stream_outputs(
    hub: Option<&Arc<ObservabilityHub>>,
    server: Option<&MetricsServer>,
    scrape: bool,
    flight_out: Option<&str>,
) -> Result<(), CliError> {
    if let (Some(server), true) = (server, scrape) {
        self_scrape(server)?;
    }
    if let (Some(hub), Some(path)) = (hub, flight_out) {
        write_text(path, &hub.flight().to_json().map_err(cmd_err)?)?;
    }
    for name in STREAM_DUMPS {
        unregister_panic_dump(name);
    }
    Ok(())
}

/// The fields `stream --slo-front` reads back from a `slo_front` bench
/// artifact (extra fields in the file are ignored).
#[derive(Deserialize)]
struct SloFrontFile {
    points: Vec<OperatingPoint>,
}

/// Parses `--tenants "cpt/burst/prio,cpt/burst/prio"` into quotas for
/// tenant ids `1..=N`: cycles-per-token (0 = unlimited), bucket burst,
/// shedding priority.
fn parse_tenants(spec: &str) -> Result<Vec<TenantQuota>, CliError> {
    spec.split(',')
        .enumerate()
        .map(|(i, entry)| {
            let parts: Vec<&str> = entry.split('/').collect();
            let [cpt, burst, priority] = parts.as_slice() else {
                return Err(CliError::Command(format!(
                    "--tenants entry {entry:?}: expected cpt/burst/priority"
                )));
            };
            Ok(TenantQuota {
                tenant: i as u32 + 1,
                cycles_per_token: cpt.parse().map_err(cmd_err)?,
                burst: burst.parse().map_err(cmd_err)?,
                priority: priority.parse().map_err(cmd_err)?,
            })
        })
        .collect()
}

/// `esca stream [--frames 8] [--workers 4] [--layers 3] [--grid 192]
/// [--seed N] [--engines N] [--shards 1] [--gemm-backend blocked|scalar]
/// [--json] [--trace-out FILE] [--metrics-out FILE] [--prom-out FILE]
/// [--serve ADDR] [--serve-scrape] [--flight-out FILE]
/// [--faults] [--fault-seed N] [--chaos-out FILE]`
///
/// `--gemm-backend` selects the flat-engine GEMM microkernel used by the
/// golden and resilient paths (default: `ESCA_GEMM_BACKEND` env, then
/// `blocked`). Quantized streaming outputs are bit-identical either way.
///
/// `--plan-cache` attaches a fresh whole-network [`PlanCache`] to the
/// session (the `ESCA_PLAN_CACHE` env default still applies without the
/// flag): repeated frame geometries replay their cached GeometryPlan and
/// go matching-resident in the cycle model. `--static-scene` freezes the
/// rotating object so every frame shares one geometry — the steady-state
/// demo for the plan cache. `--matching-resident` forces the resident
/// cycle accounting on for every frame regardless of the cache.
///
/// With `--faults`, the batch runs under the seeded chaos campaign
/// ([`FaultConfig::campaign`]) on the resilient path instead: per-frame
/// outcomes and fault counters are reported, and `--chaos-out` exports
/// the replayable campaign summary as JSON.
///
/// `--tenants SPEC` and/or `--queue-depth N` switch the batch onto the
/// bounded ingest queue ([`StreamingSession::run_batch_ingest`]): SPEC
/// is comma-separated `cpt/burst/priority` token-bucket quotas, one per
/// tenant (ids `1..=N`), frames round-robin across them, and arrivals
/// land every `--arrival-period` cycles (default half of
/// `--drain-cycles`; 0 = one burst) against the modeled
/// `--drain-cycles` server. `--degrade-pct P` admits resident-plan-only
/// at/above P% occupancy. Composes with `--faults`.
///
/// `--slo-front FILE` reads a `slo_front` bench artifact, picks the
/// operating point meeting `--slo-availability-ppm` (default 900000)
/// and `--slo-p99-cycles` (default unbounded), and publishes the choice
/// through `/healthz`; its queue depth is the `--queue-depth` default.
///
/// `--serve ADDR` starts the offline-safe exposition server (e.g.
/// `127.0.0.1:9100`, or port `0` for an ephemeral port) publishing
/// `/metrics`, `/healthz`, `/snapshot` and `/flight` live while the
/// batch streams; `--serve-scrape` self-scrapes it at end of run with
/// the std-only client. `--flight-out FILE` dumps the per-frame flight
/// ring as JSON. Any of these (or `--metrics-out`/`--prom-out`) attaches
/// an observability hub to the session, and the export writers also
/// flush on panic via the filtered panic hook.
pub fn stream(args: &Args) -> Result<(), CliError> {
    let seed: u64 = args.get_or("seed", workloads::EVAL_SEEDS[0])?;
    let n_frames: usize = args.get_or("frames", 8usize)?;
    let workers: usize = args.get_or("workers", 4usize)?;
    let shards: usize = args.get_or("shards", 1usize)?;
    let grid_side: u32 = args.get_or("grid", workloads::GRID_SIDE)?;
    let n_layers: usize = args.get_or("layers", 3usize)?;
    let engines: usize = args.get_or("engines", 8usize)?;
    let gemm_backend: GemmBackendKind = args.get_or("gemm-backend", GemmBackendKind::from_env())?;
    if n_frames == 0 {
        return Err(CliError::Command("--frames must be at least 1".into()));
    }
    let stack = workloads::streaming_stack(n_layers);
    let frames = if args.flag("static-scene") {
        let first = workloads::streaming_frames(seed, 1, grid_side, &stack);
        vec![first[0].clone(); n_frames]
    } else {
        workloads::streaming_frames(seed, n_frames, grid_side, &stack)
    };
    let mut cfg = EscaConfig::default();
    cfg.matching_resident = args.flag("matching-resident");
    let esca = Esca::new(cfg).map_err(cmd_err)?;
    let clock = esca.config().clock_mhz;
    let mut session = StreamingSession::new(esca, stack, workers)
        .with_layer_shards(shards)
        .with_gemm_backend(gemm_backend);
    if args.flag("plan-cache") {
        session = session.with_plan_cache(Some(Arc::new(PlanCache::new())));
    }

    let mut operating_point = None;
    if let Some(path) = args.get("slo-front") {
        let text = std::fs::read_to_string(path).map_err(cmd_err)?;
        let front: SloFrontFile = serde_json::from_str(&text).map_err(cmd_err)?;
        let slo = SloTarget {
            min_availability_ppm: args.get_or("slo-availability-ppm", 900_000u64)?,
            max_p99_latency_cycles: args.get_or("slo-p99-cycles", 0u64)?,
        };
        let op = select_operating_point(&front.points, &slo)
            .ok_or_else(|| CliError::Command(format!("{path}: empty operating-point sweep")))?;
        println!(
            "operating point from {path}: queue depth {}, {} retries, budget {} \
             -> {} ppm availability @ p99 {} cycles",
            op.queue_depth,
            op.max_retries,
            op.cycle_budget,
            op.availability_ppm,
            op.p99_latency_cycles
        );
        session = session.with_operating_point(op);
        operating_point = Some(op);
    }

    let metrics_out = args.get("metrics-out");
    let prom_out = args.get("prom-out");
    let flight_out = args.get("flight-out");
    let serve_addr = args.get("serve");
    let hub = (serve_addr.is_some()
        || flight_out.is_some()
        || metrics_out.is_some()
        || prom_out.is_some())
    .then(|| Arc::new(ObservabilityHub::new()));
    if let Some(hub) = &hub {
        session = session.with_hub(Arc::clone(hub));
        register_stream_flush(hub, metrics_out, prom_out, flight_out);
    }
    let server = match (serve_addr, &hub) {
        (Some(addr), Some(hub)) => {
            let srv = MetricsServer::bind(addr, Arc::clone(hub)).map_err(cmd_err)?;
            println!("observability plane on http://{}", srv.local_addr());
            Some(srv)
        }
        _ => None,
    };

    if args.get("tenants").is_some() || args.get("queue-depth").is_some() {
        let tenants = match args.get("tenants") {
            Some(spec) => parse_tenants(spec)?,
            None => Vec::new(),
        };
        let default_depth = operating_point.map_or(64, |op| op.queue_depth as usize);
        let drain_cycles: u64 = args.get_or("drain-cycles", 70_000u64)?;
        let admission = AdmissionConfig {
            queue_depth: args.get_or("queue-depth", default_depth)?,
            drain_cycles,
            degrade_occupancy_pct: args.get_or("degrade-pct", DEGRADE_DISABLED)?,
            tenants: tenants.clone(),
            ..AdmissionConfig::default()
        };
        let period: u64 = args.get_or("arrival-period", drain_cycles / 2)?;
        let arrivals: Vec<Arrival> = (0..frames.len())
            .map(|i| Arrival {
                frame: i,
                tenant: if tenants.is_empty() {
                    0
                } else {
                    tenants[i % tenants.len()].tenant
                },
                at_cycle: i as u64 * period,
            })
            .collect();
        let cfg = if args.flag("faults") {
            FaultConfig::campaign(args.get_or("fault-seed", seed)?)
        } else {
            FaultConfig::off(seed)
        };
        let report = session
            .run_batch_ingest(&frames, &arrivals, &cfg, &admission)
            .map_err(cmd_err)?;
        let c = &report.counters;
        println!(
            "ingest stream over {} frames ({} tenants, queue depth {}, drain {} cycles, \
             arrivals every {} cycles) on {} workers:",
            report.frames.len(),
            tenants.len().max(1),
            admission.queue_depth,
            admission.drain_cycles,
            period,
            report.workers
        );
        println!(
            "  outcomes:    {} ok, {} retried, {} failed, {} dropped ({} degraded), peak queue {}",
            c.ok_frames,
            c.retried_frames,
            c.failed_frames,
            c.dropped_frames,
            c.degraded_frames,
            report.queue_peak
        );
        println!(
            "  drops:       {} backpressure, {} deadline, {} shed, {} over quota",
            c.dropped_backpressure, c.dropped_deadline, c.dropped_shed, c.dropped_over_quota
        );
        let ids: Vec<u32> = if tenants.is_empty() {
            vec![0]
        } else {
            tenants.iter().map(|q| q.tenant).collect()
        };
        for id in ids {
            let total = report.frames.iter().filter(|fr| fr.tenant == id).count();
            let done = report
                .frames
                .iter()
                .filter(|fr| fr.tenant == id && fr.outcome.completed())
                .count();
            println!("    tenant {id:<3} {done}/{total} frames completed");
        }
        if args.flag("json") {
            let json = serde_json::to_string_pretty(&report.summary()).map_err(cmd_err)?;
            println!("{json}");
        }
        if let Some(path) = args.get("chaos-out") {
            let json = serde_json::to_string_pretty(&report.summary()).map_err(cmd_err)?;
            write_text(path, &json)?;
        }
        if let Some(path) = metrics_out {
            let json = serde_json::to_string_pretty(&report.telemetry).map_err(cmd_err)?;
            write_text(path, &json)?;
        }
        if let Some(path) = prom_out {
            write_text(path, &report.telemetry.to_prometheus_text())?;
        }
        finish_stream_outputs(
            hub.as_ref(),
            server.as_ref(),
            args.flag("serve-scrape"),
            flight_out,
        )?;
        return Ok(());
    }

    if args.flag("faults") {
        let fault_seed: u64 = args.get_or("fault-seed", seed)?;
        let cfg = FaultConfig::campaign(fault_seed);
        let report = session
            .run_batch_resilient(&frames, &cfg)
            .map_err(cmd_err)?;
        let c = &report.counters;
        println!(
            "chaos campaign over {} frames (fault seed {fault_seed}, grid {grid_side}³) on {} workers:",
            report.frames.len(),
            report.workers
        );
        println!(
            "  outcomes:    {} ok, {} retried ({} retries), {} failed, {} dropped",
            c.ok_frames, c.retried_frames, c.retries_total, c.failed_frames, c.dropped_frames
        );
        println!(
            "  faults:      {} injected, {} detected, {} fallbacks, {} silent corruptions, {} stall cycles",
            c.total_injected(),
            c.detected.iter().sum::<u64>(),
            c.fallbacks,
            c.silent_corruptions,
            c.injected_stall_cycles
        );
        for class in FaultClass::ALL {
            let i = class as usize;
            if c.injected[i] > 0 {
                println!(
                    "    {:<18} {} injected / {} detected",
                    class.as_str(),
                    c.injected[i],
                    c.detected[i]
                );
            }
        }
        if args.flag("json") {
            let json = serde_json::to_string_pretty(&report.summary()).map_err(cmd_err)?;
            println!("{json}");
        }
        if let Some(path) = args.get("chaos-out") {
            let json = serde_json::to_string_pretty(&report.summary()).map_err(cmd_err)?;
            write_text(path, &json)?;
        }
        if let Some(path) = metrics_out {
            let json = serde_json::to_string_pretty(&report.telemetry).map_err(cmd_err)?;
            write_text(path, &json)?;
        }
        if let Some(path) = prom_out {
            write_text(path, &report.telemetry.to_prometheus_text())?;
        }
        finish_stream_outputs(
            hub.as_ref(),
            server.as_ref(),
            args.flag("serve-scrape"),
            flight_out,
        )?;
        return Ok(());
    }

    let report = session.run_batch(&frames).map_err(cmd_err)?;

    println!(
        "streamed {} frames (seed {seed}, grid {grid_side}³, {n_layers}-layer stack) on {} workers:",
        report.frames(),
        report.workers
    );
    println!(
        "  host wall:   {:.2} frames/s (p50 {:.3} ms, p99 {:.3} ms per frame)",
        report.wall_fps(),
        report.latency_percentile(50.0).as_secs_f64() * 1e3,
        report.latency_percentile(99.0).as_secs_f64() * 1e3
    );
    println!(
        "  simulated:   {:.2} GOPS aggregate at {clock} MHz, {} cycles total ({} weight load)",
        report.aggregate_gops(),
        report.sequential_cycles(),
        report.weight_load_cycles()
    );
    let m = report.modeled(engines);
    println!(
        "  modeled:     {engines} engines sustain {:.1} frames/s ({:.2}x over one engine)",
        m.frames_per_s, m.speedup
    );
    let resident = report
        .telemetry
        .cycle
        .counters
        .iter()
        .find(|c| c.name == "esca_stream_resident_frames_total")
        .map(|c| c.value);
    if let Some(resident) = resident {
        println!(
            "  plan cache:  {resident}/{} frames matching-resident",
            report.frames()
        );
    }
    if args.flag("json") {
        let json = serde_json::to_string_pretty(&report.per_frame).map_err(cmd_err)?;
        println!("{json}");
    }
    if let Some(path) = args.get("trace-out") {
        // One lane per modeled engine, one "X" event per frame; derived
        // purely from simulated cycles, so the file is byte-identical for
        // any worker count.
        let trace = report.to_chrome_trace(engines);
        write_text(path, &trace.to_json().map_err(cmd_err)?)?;
    }
    if let Some(path) = args.get("span-trace-out") {
        // The nested frame → attempt → layer export; cycle-domain ts/dur
        // are byte-identical across (workers, shards) splits.
        let trace = report.to_span_trace();
        write_text(path, &trace.to_json().map_err(cmd_err)?)?;
    }
    if let Some(path) = metrics_out {
        let json = serde_json::to_string_pretty(&report.telemetry).map_err(cmd_err)?;
        write_text(path, &json)?;
    }
    if let Some(path) = prom_out {
        write_text(path, &report.telemetry.to_prometheus_text())?;
    }
    finish_stream_outputs(
        hub.as_ref(),
        server.as_ref(),
        args.flag("serve-scrape"),
        flight_out,
    )?;
    Ok(())
}

/// `esca tables [--only 1|2|3|fig10]`
pub fn tables(args: &Args) -> Result<(), CliError> {
    let only = args.get("only");
    let cfg = EscaConfig::default();
    if only.is_none() || only == Some("1") {
        let shapenet = tables::table1_mean(workloads::shapenet_voxelized);
        tables::print_table1_block("ShapeNet-like", &shapenet, &paper::TABLE1_SHAPENET);
        let nyu = tables::table1_mean(workloads::nyu_voxelized);
        tables::print_table1_block("NYU-like", &nyu, &paper::TABLE1_NYU);
    }
    if only.is_none() || only == Some("2") {
        tables::print_table2(&cfg);
    }
    if only.is_none() || only == Some("3") || only == Some("fig10") {
        let cmp = tables::compare_platforms(workloads::EVAL_SEEDS[0], &cfg);
        if only != Some("fig10") {
            tables::print_table3(&cmp);
        }
        if only.is_none() || only == Some("fig10") {
            tables::print_fig10(&cmp);
        }
    }
    Ok(())
}

/// `esca dse [--seed N]`
pub fn dse(args: &Args) -> Result<(), CliError> {
    let seed: u64 = args.get_or("seed", workloads::EVAL_SEEDS[0])?;
    let layers = workloads::unet_subconv_workload(seed);
    // Use two representative layers to keep the sweep quick.
    let mut workload: DseWorkload = Vec::new();
    for lw in layers.iter().take(3) {
        let qw = QuantizedWeights::auto(&lw.weights, 8, 12).map_err(cmd_err)?;
        let qin = quantize_tensor(&lw.input, qw.quant().act);
        workload.push((qin, qw, true));
    }
    let points =
        sweep(&EscaConfig::default(), &SweepAxes::default(), &workload).map_err(cmd_err)?;
    println!(
        "{:<28} {:>8} {:>8} {:>9} {:>6}",
        "design point", "GOPS", "power W", "GOPS/W", "DSP"
    );
    for p in &points {
        println!(
            "{:<28} {:>8.2} {:>8.2} {:>9.2} {:>6}",
            p.label, p.gops, p.power_w, p.gops_per_w, p.dsp
        );
    }
    println!("pareto front:");
    for p in pareto_front(&points) {
        println!("  {}", p.label);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn make_cloud_validates_dataset() {
        assert!(make_cloud("shapenet", 1).is_ok());
        assert!(make_cloud("nyu", 1).is_ok());
        assert!(make_cloud("modelnet", 1).is_err());
    }

    #[test]
    fn generate_to_file_roundtrips() {
        let dir = std::env::temp_dir().join("esca_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("obj.xyz");
        let path_str = path.to_str().unwrap();
        let a = parse(&[
            "generate",
            "--dataset",
            "shapenet",
            "--seed",
            "4",
            "--out",
            path_str,
        ]);
        generate(&a).unwrap();
        let cloud = esca_pointcloud::io::read_xyz(std::fs::File::open(&path).unwrap()).unwrap();
        assert!(cloud.len() > 1000);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn voxelize_runs_on_small_grid() {
        let a = parse(&[
            "voxelize",
            "--dataset",
            "nyu",
            "--seed",
            "2",
            "--grid",
            "96",
        ]);
        voxelize(&a).unwrap();
    }

    #[test]
    fn stream_static_scene_runs_with_plan_cache() {
        let a = parse(&[
            "stream",
            "--frames",
            "3",
            "--workers",
            "1",
            "--layers",
            "1",
            "--grid",
            "48",
            "--static-scene",
            "--plan-cache",
        ]);
        stream(&a).unwrap();
    }

    #[test]
    fn stream_serves_and_dumps_flight() {
        let dir = std::env::temp_dir().join("esca_cli_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let flight = dir.join("flight.json");
        let a = parse(&[
            "stream",
            "--frames",
            "2",
            "--workers",
            "1",
            "--layers",
            "1",
            "--grid",
            "48",
            "--serve",
            "127.0.0.1:0",
            "--serve-scrape",
            "--flight-out",
            flight.to_str().unwrap(),
        ]);
        stream(&a).unwrap();
        let dump = std::fs::read_to_string(&flight).unwrap();
        assert!(dump.contains("\"events\""));
        assert!(dump.contains("\"frame\": 0"));
        std::fs::remove_file(flight).unwrap();
    }

    #[test]
    fn run_rejects_bad_config() {
        let a = parse(&["run", "--tile", "8", "--ic", "0"]);
        assert!(run(&a).is_err());
    }

    #[test]
    fn load_or_make_grid_uses_input_file() {
        let dir = std::env::temp_dir().join("esca_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pts.xyz");
        std::fs::write(&path, "10 10 10\n20 20 20\n").unwrap();
        let a = parse(&[
            "voxelize",
            "--input",
            path.to_str().unwrap(),
            "--grid",
            "32",
        ]);
        let t = load_or_make_grid(&a).unwrap();
        assert_eq!(t.nnz(), 2);
        std::fs::remove_file(path).unwrap();
    }
}
