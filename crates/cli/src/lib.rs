//! # esca-cli
//!
//! Library backing the `esca` command-line tool: subcommand
//! implementations over the ESCA-rs workspace crates. Kept as a library so
//! the subcommands are unit-testable; `src/main.rs` is a thin shell.
//!
//! Subcommands:
//!
//! * `generate` — synthesize a ShapeNet-/NYU-like point cloud to `.xyz`;
//! * `voxelize` — voxelize a cloud and print sparsity + Table-I-style tile
//!   analysis;
//! * `run` — run the SS U-Net's Sub-Conv layers on the accelerator model
//!   and report cycles/GOPS/power;
//! * `stream` — run a frame stream on the parallel streaming engine and
//!   report frames/s, per-frame latency percentiles and aggregate GOPS;
//!   optionally export a Chrome trace-event / Perfetto trace
//!   (`--trace-out`), a telemetry snapshot (`--metrics-out`) and a
//!   Prometheus text exposition (`--prom-out`); `--faults` runs the
//!   seeded chaos campaign on the resilient path instead and
//!   `--chaos-out` exports its replayable JSON summary; `--plan-cache`,
//!   `--static-scene` and `--matching-resident` exercise the
//!   whole-network GeometryPlan cache and its matching-resident
//!   steady state; `--serve ADDR` starts the live observability plane
//!   (`/metrics`, `/healthz`, `/snapshot`, `/flight`), `--serve-scrape`
//!   self-scrapes it with the std-only client, `--flight-out` dumps the
//!   per-frame flight ring and `--span-trace-out` exports the nested
//!   frame → attempt → layer Perfetto trace;
//! * `bench` — the `run` workload with the metrics snapshot always
//!   exported (default `metrics.json`);
//! * `tables` — regenerate all paper tables (I, II, III, Fig. 10);
//! * `dse` — sweep the design space and print the Pareto front.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};

/// CLI top-level error: either bad arguments or a failed command.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing/validation failed.
    Args(ArgError),
    /// A command failed; the message is user-facing.
    Command(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Command(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

/// Usage text printed by `esca help` (and on errors).
pub const USAGE: &str = "\
esca — ESCA-rs command line (SOCC'22 point-cloud accelerator reproduction)

USAGE:
    esca <command> [options]

COMMANDS:
    generate   synthesize a point cloud        --dataset shapenet|nyu --seed N --out FILE.xyz
    voxelize   voxelize + tile analysis        --input FILE.xyz | --dataset ... --seed N [--grid 192]
    run        SS U-Net on the accelerator     --seed N [--tile 8] [--ic 16] [--oc 16] [--json] [--metrics-out FILE] [--prom-out FILE]
    stream     parallel multi-frame streaming  [--frames 8] [--workers 4] [--layers 3] [--grid 192] [--engines 8] [--shards 1] [--gemm-backend blocked|scalar] [--plan-cache] [--static-scene] [--matching-resident] [--json] [--trace-out FILE] [--span-trace-out FILE] [--metrics-out FILE] [--prom-out FILE] [--serve ADDR] [--serve-scrape] [--flight-out FILE] [--faults] [--fault-seed N] [--chaos-out FILE] [--tenants CPT/BURST/PRIO,...] [--queue-depth N] [--drain-cycles N] [--arrival-period N] [--degrade-pct P] [--slo-front FILE] [--slo-availability-ppm N] [--slo-p99-cycles N]
    bench      run workload + metrics export   [--seed N] [--metrics-out metrics.json] [--prom-out FILE]
    tables     regenerate paper tables         [--only 1|2|3|fig10]
    dse        design-space exploration        [--seed N]
    help       print this text
";

/// Dispatches a parsed command line. Returns the process exit code.
///
/// # Errors
///
/// Returns [`CliError`] with a user-facing message on any failure.
pub fn dispatch(args: &Args) -> Result<(), CliError> {
    match args.command.as_deref() {
        Some("generate") => commands::generate(args),
        Some("voxelize") => commands::voxelize(args),
        Some("run") => commands::run(args),
        Some("stream") => commands::stream(args),
        Some("bench") => commands::bench(args),
        Some("tables") => commands::tables(args),
        Some("dse") => commands::dse(args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::Command(format!(
            "unknown command {other:?}; try `esca help`"
        ))),
    }
}
