//! Minimal dependency-free argument parsing: `--key value` / `--flag`
//! options after a subcommand. (The workspace's dependency policy excludes
//! argument-parsing crates; this covers everything the CLI needs.)

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: subcommand + options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: Option<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Errors from argument parsing or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `--key` given without a value where one is required.
    MissingValue(String),
    /// A value failed to parse.
    BadValue {
        /// Option name.
        key: String,
        /// Raw value.
        value: String,
        /// Expected type description.
        expected: &'static str,
    },
    /// An unexpected positional token appeared.
    UnexpectedToken(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(k) => write!(f, "option --{k} requires a value"),
            ArgError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "option --{key}: expected {expected}, got {value:?}")
            }
            ArgError::UnexpectedToken(t) => write!(f, "unexpected argument {t:?}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses tokens (typically `std::env::args().skip(1)`).
    ///
    /// Grammar: the first bare token is the subcommand; every `--key`
    /// either captures the following token as its value or, when followed
    /// by another `--key`/end of input, is recorded as a boolean flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::UnexpectedToken`] for a second bare token.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let takes_value = iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false);
                if takes_value {
                    let value = iter.next().expect("peeked");
                    args.options.insert(key.to_string(), value);
                } else {
                    args.flags.push(key.to_string());
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                return Err(ArgError::UnexpectedToken(tok));
            }
        }
        Ok(args)
    }

    /// The raw string value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// Whether `--key` was given as a bare flag.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Parses `--key` as `T`, or returns `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when present but unparseable.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: raw.to_string(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn subcommand_and_options() {
        let a = parse(&["run", "--seed", "7", "--tile", "8", "--verbose"]);
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get_or("tile", 4u32).unwrap(), 8);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse(&["run"]);
        assert_eq!(a.get_or("seed", 11u64).unwrap(), 11);
    }

    #[test]
    fn bad_value_is_reported() {
        let a = parse(&["run", "--seed", "xyz"]);
        let err = a.get_or("seed", 0u64).unwrap_err();
        assert!(matches!(err, ArgError::BadValue { .. }));
        assert!(err.to_string().contains("seed"));
    }

    #[test]
    fn second_positional_rejected() {
        let err = Args::parse(["a".to_string(), "b".to_string()]).unwrap_err();
        assert!(matches!(err, ArgError::UnexpectedToken(_)));
    }

    #[test]
    fn trailing_flag_without_value() {
        let a = parse(&["tables", "--json"]);
        assert!(a.flag("json"));
    }
}
