//! The `esca` command-line tool. See `esca help` or [`esca_cli::USAGE`].

use esca_cli::{dispatch, Args, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
