//! CLI dispatch-level tests (fast paths only; the heavy subcommands are
//! exercised by their own unit tests and by release-mode smoke runs).

use esca_cli::{dispatch, Args, CliError};

fn parse(tokens: &[&str]) -> Args {
    Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
}

#[test]
fn help_and_empty_succeed() {
    assert!(dispatch(&parse(&["help"])).is_ok());
    assert!(dispatch(&parse(&[])).is_ok());
}

#[test]
fn unknown_command_fails_with_message() {
    let err = dispatch(&parse(&["frobnicate"])).unwrap_err();
    match err {
        CliError::Command(m) => assert!(m.contains("frobnicate")),
        other => panic!("unexpected error kind: {other}"),
    }
}

#[test]
fn usage_mentions_every_command() {
    for cmd in [
        "generate", "voxelize", "run", "stream", "tables", "dse", "help",
    ] {
        assert!(esca_cli::USAGE.contains(cmd), "usage text is missing {cmd}");
    }
}

#[test]
fn stream_small_grid_smoke() {
    // Small grid and frame count keep this fast in debug builds.
    dispatch(&parse(&[
        "stream",
        "--frames",
        "3",
        "--workers",
        "2",
        "--grid",
        "48",
        "--layers",
        "2",
        "--seed",
        "1",
    ]))
    .unwrap();
}

#[test]
fn stream_rejects_zero_frames() {
    let err = dispatch(&parse(&["stream", "--frames", "0"])).unwrap_err();
    assert!(err.to_string().contains("frames"));
}

#[test]
fn generate_with_bad_dataset_fails() {
    let err = dispatch(&parse(&["generate", "--dataset", "imagenet"])).unwrap_err();
    assert!(err.to_string().contains("imagenet"));
}

#[test]
fn voxelize_small_grid_smoke() {
    // Small grid keeps this fast in debug builds.
    dispatch(&parse(&[
        "voxelize",
        "--dataset",
        "shapenet",
        "--seed",
        "1",
        "--grid",
        "64",
    ]))
    .unwrap();
}
