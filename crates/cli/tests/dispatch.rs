//! CLI dispatch-level tests (fast paths only; the heavy subcommands are
//! exercised by their own unit tests and by release-mode smoke runs).

use esca_cli::{dispatch, Args, CliError};

fn parse(tokens: &[&str]) -> Args {
    Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
}

#[test]
fn help_and_empty_succeed() {
    assert!(dispatch(&parse(&["help"])).is_ok());
    assert!(dispatch(&parse(&[])).is_ok());
}

#[test]
fn unknown_command_fails_with_message() {
    let err = dispatch(&parse(&["frobnicate"])).unwrap_err();
    match err {
        CliError::Command(m) => assert!(m.contains("frobnicate")),
        other => panic!("unexpected error kind: {other}"),
    }
}

#[test]
fn usage_mentions_every_command() {
    for cmd in [
        "generate", "voxelize", "run", "stream", "bench", "tables", "dse", "help",
    ] {
        assert!(esca_cli::USAGE.contains(cmd), "usage text is missing {cmd}");
    }
    for flag in [
        "--trace-out",
        "--metrics-out",
        "--prom-out",
        "--plan-cache",
        "--static-scene",
        "--matching-resident",
    ] {
        assert!(
            esca_cli::USAGE.contains(flag),
            "usage text is missing {flag}"
        );
    }
}

#[test]
fn stream_small_grid_smoke() {
    // Small grid and frame count keep this fast in debug builds.
    dispatch(&parse(&[
        "stream",
        "--frames",
        "3",
        "--workers",
        "2",
        "--grid",
        "48",
        "--layers",
        "2",
        "--seed",
        "1",
    ]))
    .unwrap();
}

#[test]
fn stream_exports_trace_metrics_and_prometheus() {
    let dir = std::env::temp_dir().join(format!("esca-cli-export-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.json");
    let prom = dir.join("metrics.prom");
    dispatch(&parse(&[
        "stream",
        "--frames",
        "3",
        "--workers",
        "2",
        "--grid",
        "48",
        "--layers",
        "2",
        "--seed",
        "1",
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--prom-out",
        prom.to_str().unwrap(),
    ]))
    .unwrap();
    let trace_json = std::fs::read_to_string(&trace).unwrap();
    for key in [
        "traceEvents",
        "\"ph\"",
        "\"ts\"",
        "\"dur\"",
        "\"name\"",
        "\"pid\"",
        "\"tid\"",
    ] {
        assert!(trace_json.contains(key), "trace missing {key}");
    }
    let metrics_json = std::fs::read_to_string(&metrics).unwrap();
    assert!(metrics_json.contains("esca_frame_cycles"));
    assert!(metrics_json.contains("esca_frame_wall_micros"));
    let prom_text = std::fs::read_to_string(&prom).unwrap();
    assert!(prom_text.contains("# TYPE"));
    assert!(prom_text.contains("esca_cycles_total"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bench_writes_default_metrics_file() {
    let dir = std::env::temp_dir().join(format!("esca-cli-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // bench defaults to ./metrics.json; point it elsewhere to keep the
    // test hermetic.
    let metrics = dir.join("bench-metrics.json");
    dispatch(&parse(&[
        "bench",
        "--seed",
        "1",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]))
    .unwrap();
    let json = std::fs::read_to_string(&metrics).unwrap();
    assert!(json.contains("esca_cycles_total"));
    assert!(json.contains("esca_match_group_size"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stream_rejects_zero_frames() {
    let err = dispatch(&parse(&["stream", "--frames", "0"])).unwrap_err();
    assert!(err.to_string().contains("frames"));
}

#[test]
fn generate_with_bad_dataset_fails() {
    let err = dispatch(&parse(&["generate", "--dataset", "imagenet"])).unwrap_err();
    assert!(err.to_string().contains("imagenet"));
}

#[test]
fn voxelize_small_grid_smoke() {
    // Small grid keeps this fast in debug builds.
    dispatch(&parse(&[
        "voxelize",
        "--dataset",
        "shapenet",
        "--seed",
        "1",
        "--grid",
        "64",
    ]))
    .unwrap();
}
