//! Offline vendored property-testing framework exposing the subset of the
//! `proptest` surface this workspace uses: the `proptest!` macro,
//! `prop_assert*`/`prop_assume!`, `Strategy` with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, `collection::vec`,
//! `sample::select`, `any::<bool>()`, and `ProptestConfig::with_cases`.
//!
//! Unlike upstream proptest there is no shrinking: failures report the
//! case number, and cases are fully deterministic — the RNG for case `i`
//! of test `t` is seeded from `hash(module_path::t, i)`, so a failing
//! case number always reproduces.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies (`select`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Uniformly selects one of the given options per case.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// A strategy yielding one of `options`, uniformly.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.as_rng().gen_range(0..self.options.len());
            self.options[idx].clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.as_rng().gen()
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.as_rng().gen()
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// A strategy over all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// `prop::...` path alias (e.g. `prop::sample::select`).
    pub use crate as prop;
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` deterministic
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategies = ($($strat,)+);
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ($($arg,)+) = {
                        let ($(ref $arg,)+) = strategies;
                        ($($crate::strategy::Strategy::generate($arg, &mut __rng),)+)
                    };
                    $body
                }
            }
        )*
    };
}

/// `assert!`, reported per-case.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!`, reported per-case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!`, reported per-case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (1u32..10, 10u32..20).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(a in 3i32..9, f in -1.5f32..2.5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn flat_map_and_vec(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0u32..100, n..=n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn select_and_any(k in prop::sample::select(vec![2u32, 4, 8]), b in any::<bool>()) {
            prop_assert!([2, 4, 8].contains(&k));
            let _ = b;
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n > 0);
            prop_assert!(n > 0);
        }

        #[test]
        fn composed_strategy(p in pair()) {
            prop_assert!(p.0 < p.1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u32..1000, 0u32..1000);
        let mut a = TestRng::deterministic("x", 7);
        let mut b = TestRng::deterministic("x", 7);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
