//! Test configuration and the deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// The RNG driving value generation. Case `i` of test `name` is always
/// seeded identically, so a failing case number reproduces exactly.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the RNG from a test identifier and case index (FNV-1a).
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in test_name.as_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= case as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        TestRng(StdRng::seed_from_u64(hash))
    }

    /// The underlying `rand` generator.
    pub fn as_rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}
