//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;
use rand::distributions::uniform::SampleUniform;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// A constant strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.as_rng().gen_range(self.clone())
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.as_rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($($name:ident),+);* $(;)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($(ref $name,)+) = *self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    A;
    A, B;
    A, B, C;
    A, B, C, D;
    A, B, C, D, E;
    A, B, C, D, E, F;
}

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// See [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.as_rng().gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
