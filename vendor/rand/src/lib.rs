//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the external dependencies are vendored as minimal, dependency-free
//! reimplementations (see `vendor/README.md`). This crate reproduces the
//! parts of `rand` 0.8 the workspace uses, with the same algorithms where
//! stream compatibility matters:
//!
//! * [`SeedableRng::seed_from_u64`] uses the PCG32-style seed expansion of
//!   `rand_core` 0.6;
//! * [`rngs::StdRng`] is ChaCha12, as in `rand` 0.8;
//! * `Standard` float conversion is the `u32 >> 8` / 2⁻²⁴ mapping;
//! * integer `gen_range` uses widening-multiply rejection sampling and
//!   float `gen_range` the `[1, 2)`-mantissa trick, both as in `rand`
//!   0.8's `sample_single`.
//!
//! Only determinism and self-consistency are guaranteed; exact stream
//! equality with upstream `rand` is a non-goal (the committed golden
//! fixtures in this repository are generated with this implementation).

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

#[doc(hidden)]
pub mod chacha;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// The core of a random number generator: raw entropy output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let w = self.next_u32().to_le_bytes();
            let n = (dest.len() - i).min(4);
            dest[i..i + n].copy_from_slice(&w[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a value of the standard distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Returns a value uniformly distributed in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (Bernoulli trial).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        if p == 1.0 {
            return true;
        }
        // Bernoulli as in rand 0.8: compare 64 random bits against
        // p scaled to the full u64 range.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }

    /// Fills a slice with values of the standard distribution.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.try_fill(self)
    }

    /// Samples a distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be filled from an RNG (subset: primitive slices).
pub trait Fill {
    /// Fills `self` with random data from `rng`.
    fn try_fill<R: Rng>(&mut self, rng: &mut R);
}

impl Fill for [f32] {
    fn try_fill<R: Rng>(&mut self, rng: &mut R) {
        for v in self.iter_mut() {
            *v = Standard.sample(rng);
        }
    }
}

impl Fill for [u8] {
    fn try_fill<R: Rng>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanding it with the same
    /// PCG32-based filler as `rand_core` 0.6 so seeded streams are stable.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f32_is_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(-3i32..17);
            assert!((-3..17).contains(&v));
            let u = r.gen_range(0usize..=5);
            assert!(u <= 5);
            let w = r.gen_range(10u64..11);
            assert_eq!(w, 10);
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen_low = false;
        for _ in 0..10_000 {
            let v = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&v));
            if v < -1.0 {
                seen_low = true;
            }
        }
        assert!(seen_low, "range should cover its lower half");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn next_u64_spans_block_boundaries_consistently() {
        // Consume an odd number of u32s, then u64s, and compare with a
        // clone driven identically: exercises the BlockRng edge case.
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..63 {
            let x = a.next_u32();
            let y = b.next_u32();
            assert_eq!(x, y);
        }
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_u32(), b.next_u32());
    }
}
