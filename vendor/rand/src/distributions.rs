//! Distributions: the `Standard` distribution and uniform range sampling,
//! following the `rand` 0.8 algorithms.

use crate::{Rng, RngCore};

/// A sampling distribution over values of `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: Rng>(&self, rng: &mut R) -> T;
}

/// The standard distribution: full-range integers, `[0, 1)` floats,
/// fair-coin booleans.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64,
);

impl Distribution<bool> for Standard {
    fn sample<R: Rng>(&self, rng: &mut R) -> bool {
        // As rand 0.8: the high bit of a u32.
        (rng.next_u32() >> 31) == 1
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng>(&self, rng: &mut R) -> f32 {
        // 24 significant bits scaled into [0, 1).
        const SCALE: f32 = 1.0 / (1u32 << 24) as f32;
        (rng.next_u32() >> 8) as f32 * SCALE
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        // 53 significant bits scaled into [0, 1).
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (rng.next_u64() >> 11) as f64 * SCALE
    }
}

pub mod uniform {
    //! Uniform range sampling (`Rng::gen_range` support).

    use super::*;
    use std::ops::{Range, RangeInclusive};

    /// Types `gen_range` can produce.
    pub trait SampleUniform: Sized {
        /// Uniform sample from `[low, high)`.
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Uniform sample from `[low, high]`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R)
            -> Self;
    }

    /// Range types usable with `gen_range`.
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        /// Whether the range contains no values.
        fn is_empty(&self) -> bool;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_single(self.start, self.end, rng)
        }
        // Negated comparison is deliberate: a NaN endpoint must make the
        // range empty, which `partial_cmp`-based rewrites would not preserve.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        fn is_empty(&self) -> bool {
            !(self.start < self.end)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            T::sample_single_inclusive(low, high, rng)
        }
        // See above: NaN endpoints must yield an empty range.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        fn is_empty(&self) -> bool {
            !(self.start() <= self.end())
        }
    }

    macro_rules! uniform_int {
        ($($t:ty, $unsigned:ty, $large:ty, $wide:ty, $next:ident);* $(;)?) => {$(
            impl SampleUniform for $t {
                fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    debug_assert!(low < high);
                    let range = high.wrapping_sub(low) as $unsigned as $large;
                    // rand 0.8 sample_single: approximate zone from the
                    // leading zeros of the range (biased-rejection-free).
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = rng.$next() as $large;
                        let m = (v as $wide).wrapping_mul(range as $wide);
                        let hi = (m >> (<$large>::BITS)) as $large;
                        let lo = m as $large;
                        if lo <= zone {
                            return low.wrapping_add(hi as $t);
                        }
                    }
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    debug_assert!(low <= high);
                    let range = (high.wrapping_sub(low) as $unsigned as $large).wrapping_add(1);
                    if range == 0 {
                        // Full integer span.
                        return rng.$next() as $t;
                    }
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = rng.$next() as $large;
                        let m = (v as $wide).wrapping_mul(range as $wide);
                        let hi = (m >> (<$large>::BITS)) as $large;
                        let lo = m as $large;
                        if lo <= zone {
                            return low.wrapping_add(hi as $t);
                        }
                    }
                }
            }
        )*};
    }

    uniform_int!(
        i8, u8, u32, u64, next_u32;
        i16, u16, u32, u64, next_u32;
        i32, u32, u32, u64, next_u32;
        u8, u8, u32, u64, next_u32;
        u16, u16, u32, u64, next_u32;
        u32, u32, u32, u64, next_u32;
        i64, u64, u64, u128, next_u64;
        u64, u64, u64, u128, next_u64;
        isize, usize, u64, u128, next_u64;
        usize, usize, u64, u128, next_u64;
    );

    macro_rules! uniform_float {
        ($($t:ty, $u:ty, $bits_to_discard:expr, $exp_one:expr, $next:ident);* $(;)?) => {$(
            impl SampleUniform for $t {
                fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    debug_assert!(low.is_finite() && high.is_finite() && low < high);
                    let mut scale = high - low;
                    loop {
                        // A value in [1, 2): fixed exponent, random mantissa.
                        let mantissa = rng.$next() >> $bits_to_discard;
                        let value1_2 = <$t>::from_bits($exp_one | mantissa);
                        // FMA-friendly form, as rand 0.8.
                        let res = value1_2 * scale + (low - scale);
                        if res < high {
                            return res;
                        }
                        // Rounding pushed res to high: shave one ULP off
                        // the scale and retry.
                        scale = <$t>::from_bits(scale.to_bits() - 1);
                    }
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    debug_assert!(low.is_finite() && high.is_finite() && low <= high);
                    if low == high {
                        return low;
                    }
                    let scale = high - low;
                    let mantissa = rng.$next() >> $bits_to_discard;
                    let value1_2 = <$t>::from_bits($exp_one | mantissa);
                    let res = value1_2 * scale + (low - scale);
                    if res > high { high } else { res }
                }
            }
        )*};
    }

    uniform_float!(
        f32, u32, 9u32, 0x3F80_0000u32, next_u32;
        f64, u64, 12u64, 0x3FF0_0000_0000_0000u64, next_u64;
    );
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleUniform;
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn uniform_int_covers_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = i32::sample_single(0, 10, &mut rng);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn tiny_float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        let (lo, hi) = (1.0f32, 1.0 + f32::EPSILON * 4.0);
        for _ in 0..1000 {
            let v = f32::sample_single(lo, hi, &mut rng);
            assert!(v >= lo && v < hi);
        }
    }
}
