//! The ChaCha stream cipher as a block RNG — the engine behind
//! [`crate::rngs::StdRng`] (12 rounds) and the `rand_chacha` vendored
//! crate. Mirrors `rand_chacha` 0.3: a 64-bit block counter at state words
//! 12–13, a 64-bit stream id at words 14–15, four blocks (64 output words)
//! generated per refill, and `rand_core`'s `BlockRng` word-consumption
//! rules for `next_u32`/`next_u64`.

use crate::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const BUFFER_BLOCKS: usize = 4;
const BUFFER_WORDS: usize = BLOCK_WORDS * BUFFER_BLOCKS;

/// A ChaCha random number generator with a compile-time round count.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buffer: [u32; BUFFER_WORDS],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    /// The "expand 32-byte k" constants.
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn block(&self, counter: u64) -> [u32; BLOCK_WORDS] {
        let mut state = [0u32; BLOCK_WORDS];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let initial = state;
        debug_assert!(ROUNDS.is_multiple_of(2), "ChaCha uses double rounds");
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(initial) {
            *s = s.wrapping_add(i);
        }
        state
    }

    fn refill(&mut self) {
        for b in 0..BUFFER_BLOCKS {
            let block = self.block(self.counter.wrapping_add(b as u64));
            self.buffer[b * BLOCK_WORDS..(b + 1) * BLOCK_WORDS].copy_from_slice(&block);
        }
        self.counter = self.counter.wrapping_add(BUFFER_BLOCKS as u64);
        self.index = 0;
    }

    /// Selects a sub-stream (the 64-bit nonce words).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = BUFFER_WORDS; // force refill
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaChaRng {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; BUFFER_WORDS],
            index: BUFFER_WORDS,
        }
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        // rand_core BlockRng consumption rules, including the split read
        // at the last buffered word.
        let read =
            |buf: &[u32; BUFFER_WORDS], i: usize| (buf[i] as u64) | ((buf[i + 1] as u64) << 32);
        if self.index < BUFFER_WORDS - 1 {
            let v = read(&self.buffer, self.index);
            self.index += 2;
            v
        } else if self.index >= BUFFER_WORDS {
            self.refill();
            let v = read(&self.buffer, 0);
            self.index = 2;
            v
        } else {
            let lo = self.buffer[BUFFER_WORDS - 1] as u64;
            self.refill();
            let hi = self.buffer[0] as u64;
            self.index = 1;
            (hi << 32) | lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 §2.3.2 test vector (ChaCha20 block function). Our layout
    /// uses a 64-bit counter + 64-bit stream; the RFC vector uses a
    /// 32-bit counter and 96-bit nonce, so reproduce it by packing the
    /// first nonce word into the counter's high half.
    #[test]
    fn chacha20_block_matches_rfc7539() {
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut rng = ChaChaRng::<20>::from_seed(seed);
        rng.counter = 1 | ((0x0900_0000u64) << 32);
        rng.stream = 0x4a00_0000u64;
        let block = rng.block(rng.counter);
        let expected: [u32; 16] = [
            0xe4e7f110, 0x15593bd1, 0x1fdd0f50, 0xc47120a3, 0xc7f4d1c7, 0x0368c033, 0x9aaa2204,
            0x4e6cd4c3, 0x466482d2, 0x09aa9f07, 0x05d7c214, 0xa2028bd9, 0xd19c12b5, 0xb94e16de,
            0xe883d0cb, 0x4e3c50a2,
        ];
        assert_eq!(block, expected);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaChaRng::<12>::from_seed([7; 32]);
        let mut b = ChaChaRng::<12>::from_seed([7; 32]);
        b.set_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
