//! The standard generators.

use crate::chacha::ChaChaRng;
use crate::{RngCore, SeedableRng};

/// The standard RNG: ChaCha with 12 rounds, as in `rand` 0.8.
#[derive(Debug, Clone)]
pub struct StdRng(ChaChaRng<12>);

impl SeedableRng for StdRng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        StdRng(ChaChaRng::from_seed(seed))
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A small, fast RNG (here simply ChaCha8 — determinism matters more than
/// speed in this workspace).
#[derive(Debug, Clone)]
pub struct SmallRng(ChaChaRng<8>);

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        SmallRng(ChaChaRng::from_seed(seed))
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
