//! A miniature loom: exhaustive exploration of every interleaving of a
//! small set of modeled threads.
//!
//! Real `std::thread` tests only sample the schedules the host OS happens
//! to produce; races that need a specific two-instruction window can
//! survive thousands of runs. This crate takes the loom approach instead:
//! model each thread as an ordered list of *atomic steps* (closures over a
//! shared state `S`, each standing for one critical-section-sized action),
//! then run the model once per possible merge of the threads' step
//! sequences. For small models the schedule space is tiny — two threads of
//! three steps each is `C(6,3) = 20` schedules — so the test is exact,
//! deterministic and fast.
//!
//! This is a vendored, dependency-free test harness (see
//! `vendor/README.md`): it covers this workspace's usage only and is not
//! a drop-in replacement for the upstream `loom` crate.
//!
//! ```
//! use interleave::{explore, Model};
//!
//! // A lost-update race: two threads do read-modify-write in two steps.
//! #[derive(Default)]
//! struct S { shared: u32, local: [u32; 2] }
//! let mut lost_update = false;
//! explore(
//!     Model::new(S::default)
//!         .thread([
//!             Box::new(|s: &mut S| s.local[0] = s.shared) as interleave::Step<S>,
//!             Box::new(|s: &mut S| s.shared = s.local[0] + 1),
//!         ])
//!         .thread([
//!             Box::new(|s: &mut S| s.local[1] = s.shared) as interleave::Step<S>,
//!             Box::new(|s: &mut S| s.shared = s.local[1] + 1),
//!         ]),
//!     |s, _schedule| {
//!         if s.shared != 2 {
//!             lost_update = true; // some schedule loses an increment
//!         }
//!     },
//! );
//! assert!(lost_update);
//! ```

#![forbid(unsafe_code)]

/// One atomic step of a modeled thread: a re-runnable action on the
/// shared state. Each step stands for the largest region the real code
/// executes under one lock (or one atomic RMW) — the explorer never
/// splits a step.
pub type Step<S> = Box<dyn Fn(&mut S)>;

/// A concurrency model: a state factory plus per-thread step lists.
pub struct Model<S, F: Fn() -> S> {
    init: F,
    threads: Vec<Vec<Step<S>>>,
}

impl<S, F: Fn() -> S> Model<S, F> {
    /// Starts a model whose every execution begins from `init()`.
    pub fn new(init: F) -> Self {
        Model {
            init,
            threads: Vec::new(),
        }
    }

    /// Adds one modeled thread (its steps run in order, arbitrarily
    /// interleaved with other threads' steps).
    #[must_use]
    pub fn thread(mut self, steps: impl IntoIterator<Item = Step<S>>) -> Self {
        self.threads.push(steps.into_iter().collect());
        self
    }

    /// Number of schedules [`explore`] will run: the multinomial
    /// coefficient of the per-thread step counts.
    pub fn schedule_count(&self) -> u64 {
        let lens: Vec<usize> = self.threads.iter().map(Vec::len).collect();
        count_merges(&lens)
    }
}

/// Number of distinct merges of sequences with the given lengths.
fn count_merges(lens: &[usize]) -> u64 {
    // Multinomial (sum lens)! / prod(lens!) computed without overflow for
    // the tiny models this harness targets.
    let mut result: u64 = 1;
    let mut placed: u64 = 0;
    for &len in lens {
        for i in 1..=len as u64 {
            placed += 1;
            // result *= C(placed, i) incrementally: multiply by placed,
            // divide by i — exact because result always holds a product
            // of binomials.
            result = result * placed / i;
        }
    }
    result
}

/// Every schedule (sequence of thread indices) merging threads with the
/// given step counts, in lexicographic order.
pub fn schedules(lens: &[usize]) -> Vec<Vec<usize>> {
    let total: usize = lens.iter().sum();
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(total);
    let mut remaining = lens.to_vec();
    fn rec(remaining: &mut [usize], cur: &mut Vec<usize>, total: usize, out: &mut Vec<Vec<usize>>) {
        if cur.len() == total {
            out.push(cur.clone());
            return;
        }
        for t in 0..remaining.len() {
            if remaining[t] > 0 {
                remaining[t] -= 1;
                cur.push(t);
                rec(remaining, cur, total, out);
                cur.pop();
                remaining[t] += 1;
            }
        }
    }
    rec(&mut remaining, &mut cur, total, &mut out);
    out
}

/// Runs `check(final_state, schedule)` for **every** interleaving of the
/// model's threads. The state is rebuilt from the factory per schedule,
/// so steps may freely mutate it.
pub fn explore<S, F: Fn() -> S>(model: Model<S, F>, mut check: impl FnMut(&S, &[usize])) {
    let lens: Vec<usize> = model.threads.iter().map(Vec::len).collect();
    for schedule in schedules(&lens) {
        let mut state = (model.init)();
        let mut next = vec![0usize; model.threads.len()];
        for &t in &schedule {
            let step = &model.threads[t][next[t]];
            step(&mut state);
            next[t] += 1;
        }
        check(&state, &schedule);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_enumeration_is_exhaustive_and_ordered() {
        let s = schedules(&[2, 2]);
        assert_eq!(s.len(), 6); // C(4, 2)
        assert_eq!(s[0], vec![0, 0, 1, 1]);
        assert_eq!(s[5], vec![1, 1, 0, 0]);
        let mut sorted = s.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, s, "lexicographic and duplicate-free");
        assert_eq!(schedules(&[3, 3]).len(), 20); // C(6, 3)
        assert_eq!(schedules(&[2, 2, 2]).len(), 90); // 6!/(2!2!2!)
    }

    #[test]
    fn count_matches_enumeration() {
        for lens in [vec![1, 1], vec![2, 2], vec![3, 3], vec![2, 2, 2]] {
            assert_eq!(count_merges(&lens) as usize, schedules(&lens).len());
        }
    }

    #[test]
    fn explore_finds_the_lost_update() {
        #[derive(Default)]
        struct S {
            shared: u32,
            local: [u32; 2],
        }
        let mut outcomes = Vec::new();
        explore(
            Model::new(S::default)
                .thread([
                    Box::new(|s: &mut S| s.local[0] = s.shared) as Step<S>,
                    Box::new(|s: &mut S| s.shared = s.local[0] + 1),
                ])
                .thread([
                    Box::new(|s: &mut S| s.local[1] = s.shared) as Step<S>,
                    Box::new(|s: &mut S| s.shared = s.local[1] + 1),
                ]),
            |s, _| outcomes.push(s.shared),
        );
        assert_eq!(outcomes.len(), 6);
        assert!(outcomes.contains(&2), "serialized schedules reach 2");
        assert!(outcomes.contains(&1), "racy schedules lose an update");
    }
}
