//! Offline vendored serde facade.
//!
//! The real `serde` is a visitor-based zero-copy framework; this vendored
//! stand-in keeps the same *user-facing* surface (`Serialize`,
//! `Deserialize`, `#[derive(Serialize, Deserialize)]`, `#[serde(skip)]`)
//! but routes everything through an owned [`Content`] tree, which is all
//! the JSON round-tripping in this workspace needs. Maps preserve
//! insertion order so serialized field order matches declaration order,
//! and integers keep their exact signed/unsigned identity so round-trips
//! are byte-stable.

#![forbid(unsafe_code)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing value tree — the interchange format between
/// `Serialize`/`Deserialize` impls and data formats such as `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also stands in for a missing struct field).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative (or explicitly signed) integer.
    I64(i64),
    /// A double-precision float.
    F64(f64),
    /// A single-precision float (kept distinct so f32 values print with
    /// f32 shortest-round-trip formatting).
    F32(f32),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map (struct fields in declaration order).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a map key, yielding `Null` for missing keys (the derive
    /// uses this so absent optional fields deserialize as `None`).
    pub fn field(&self, key: &str) -> &Content {
        match self {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&Content::Null),
            _ => &Content::Null,
        }
    }

    /// Short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) | Content::F32(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

/// `value[0]` indexing, as on `serde_json::Value` (alias of `Content`).
/// Out-of-bounds or non-sequence yields `Null`, matching serde_json.
impl std::ops::Index<usize> for Content {
    type Output = Content;
    fn index(&self, idx: usize) -> &Content {
        match self {
            Content::Seq(items) => items.get(idx).unwrap_or(&Content::Null),
            _ => &Content::Null,
        }
    }
}

/// `value["key"]` indexing, as on `serde_json::Value`.
impl std::ops::Index<&str> for Content {
    type Output = Content;
    fn index(&self, key: &str) -> &Content {
        self.field(key)
    }
}

macro_rules! content_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Content {
            fn eq(&self, other: &$t) -> bool {
                match *self {
                    Content::U64(v) => <$t>::try_from(v).map(|x| x == *other).unwrap_or(false),
                    Content::I64(v) => <$t>::try_from(v).map(|x| x == *other).unwrap_or(false),
                    _ => false,
                }
            }
        }
        impl PartialEq<Content> for $t {
            fn eq(&self, other: &Content) -> bool {
                other == self
            }
        }
    )*};
}

content_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<&str> for Content {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Content {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Content {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Content::Bool(b) if b == other)
    }
}

impl PartialEq<f64> for Content {
    fn eq(&self, other: &f64) -> bool {
        match *self {
            Content::F64(v) => v == *other,
            Content::F32(v) => f64::from(v) == *other,
            _ => false,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }

    /// Prefixes the error with the field/context it occurred in.
    pub fn context(self, what: &str) -> Self {
        Error(format!("{what}: {}", self.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can be rendered to a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the interchange tree.
    fn to_content(&self) -> Content;
}

/// A value that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Parses a value out of the interchange tree.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match *content {
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t)))),
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t)))),
                    ref other => Err(Error::custom(format!(
                        "expected {}, got {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match *content {
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t)))),
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t)))),
                    ref other => Err(Error::custom(format!(
                        "expected {}, got {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F32(*self)
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match *content {
            Content::F32(v) => Ok(v),
            Content::F64(v) => Ok(v as f32),
            Content::U64(v) => Ok(v as f32),
            Content::I64(v) => Ok(v as f32),
            ref other => Err(Error::custom(format!("expected f32, got {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match *content {
            Content::F64(v) => Ok(v),
            Content::F32(v) => Ok(v as f64),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            ref other => Err(Error::custom(format!("expected f64, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

/// Deserializing into `&'static str` leaks the string — acceptable for
/// the small static-name fields this workspace round-trips.
impl Deserialize for &'static str {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let items = content
            .as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {}", content.kind())))?;
        items.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_content(content)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected {N} elements, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let items = content.as_seq().ok_or_else(|| {
                    Error::custom(format!("expected tuple sequence, got {}", content.kind()))
                })?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_identity_preserved() {
        assert_eq!(5u32.to_content(), Content::U64(5));
        assert_eq!(5i32.to_content(), Content::U64(5));
        assert_eq!((-5i32).to_content(), Content::I64(-5));
        assert_eq!(i32::from_content(&Content::U64(7)), Ok(7));
        assert!(u8::from_content(&Content::U64(300)).is_err());
    }

    #[test]
    fn nested_roundtrip() {
        let v: Vec<((i32, i32, i32), Vec<i16>)> = vec![((1, -2, 3), vec![4, -5])];
        let c = v.to_content();
        let back: Vec<((i32, i32, i32), Vec<i16>)> = Vec::from_content(&c).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u32>::from_content(&Content::Null), Ok(None));
        assert_eq!(Some(3u32).to_content(), Content::U64(3));
    }

    #[test]
    fn array_len_checked() {
        let c = Content::Seq(vec![Content::F64(1.0), Content::F64(2.0)]);
        assert!(<[f64; 3]>::from_content(&c).is_err());
        let ok = <[f64; 2]>::from_content(&c).unwrap();
        assert_eq!(ok, [1.0, 2.0]);
    }
}
