//! Offline vendored subset of `rand_chacha` 0.3: the ChaCha8/12/20
//! generators, backed by the block implementation in the vendored `rand`
//! crate (see `vendor/rand/src/chacha.rs`).

#![forbid(unsafe_code)]

use rand::chacha::ChaChaRng as Core;
use rand::{RngCore, SeedableRng};

macro_rules! chacha_rng {
    ($(#[$doc:meta] $name:ident, $rounds:literal);* $(;)?) => {$(
        #[$doc]
        #[derive(Debug, Clone)]
        pub struct $name(Core<$rounds>);

        impl $name {
            /// Selects a sub-stream (64-bit nonce).
            pub fn set_stream(&mut self, stream: u64) {
                self.0.set_stream(stream);
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                $name(Core::from_seed(seed))
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.0.next_u32()
            }
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
    )*};
}

chacha_rng!(
    /// ChaCha with 8 rounds.
    ChaCha8Rng, 8;
    /// ChaCha with 12 rounds (the `StdRng` engine).
    ChaCha12Rng, 12;
    /// ChaCha with 20 rounds.
    ChaCha20Rng, 20;
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha12_matches_stdrng() {
        let mut a = ChaCha12Rng::seed_from_u64(0xF1);
        let mut b = rand::rngs::StdRng::seed_from_u64(0xF1);
        for _ in 0..256 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn seeded_gen_is_deterministic() {
        let mut a = ChaCha12Rng::seed_from_u64(99);
        let mut b = ChaCha12Rng::seed_from_u64(99);
        let xs: Vec<f32> = (0..64).map(|_| a.gen()).collect();
        let ys: Vec<f32> = (0..64).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }
}
