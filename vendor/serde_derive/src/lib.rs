//! Offline vendored `#[derive(Serialize, Deserialize)]` for the vendored
//! content-tree `serde` facade. Parses the item with raw `proc_macro`
//! token trees (no `syn`/`quote` available offline) and supports exactly
//! the shapes this workspace uses:
//!
//! * structs with named fields (optionally generic, `#[serde(skip)]`
//!   honoured: skipped on serialize, `Default::default()` on deserialize);
//! * single-field ("newtype") tuple structs, serialized transparently;
//! * enums whose variants are all unit variants, serialized as the
//!   variant-name string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<Field>),
    Newtype,
    UnitStruct,
    UnitEnum(Vec<String>),
}

#[derive(Debug)]
struct Input {
    name: String,
    /// Type-parameter names with bounds and defaults stripped.
    generics: Vec<String>,
    kind: Kind,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::std::compile_error!({msg:?});").parse().unwrap()
}

/// Consumes leading attributes (`#[...]`), returning whether any of them
/// was `#[serde(skip)]`.
fn skip_attrs(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut skip = false;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    if attr_is_serde_skip(&g) {
                        skip = true;
                    }
                }
            }
            _ => return skip,
        }
    }
}

fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut inner = group.stream().into_iter();
    match inner.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return false,
    }
    match inner.next() {
        Some(TokenTree::Group(args)) => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...), if present.
fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

/// Parses `<...>` after the type name, returning the bare parameter names.
fn parse_generics(
    tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> Result<Vec<String>, String> {
    let mut params = Vec::new();
    match tokens.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            tokens.next();
        }
        _ => return Ok(params),
    }
    let mut depth = 1usize;
    // `expect_param` is true at the start and after each top-level comma.
    let mut expect_param = true;
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    return Ok(params);
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                // Lifetime parameter: consume the name, do not record.
                tokens.next();
                expect_param = false;
            }
            TokenTree::Ident(i) if expect_param => {
                let s = i.to_string();
                if s == "const" {
                    return Err(
                        "const generics are not supported by the vendored serde derive".to_string(),
                    );
                }
                params.push(s);
                expect_param = false;
            }
            _ => {}
        }
    }
    Err("unclosed generic parameter list".to_string())
}

fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut tokens = group.stream().into_iter().peekable();
    loop {
        let skip = skip_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => return Ok(fields),
            Some(other) => return Err(format!("expected field name, got `{other}`")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Consume the type up to the next top-level comma.
        let mut depth = 0usize;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth = depth.saturating_sub(1);
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
        fields.push(Field { name, skip });
    }
}

fn parse_unit_variants(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = group.stream().into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => return Ok(variants),
            Some(other) => return Err(format!("expected variant name, got `{other}`")),
        };
        match tokens.next() {
            None => {
                variants.push(name);
                return Ok(variants);
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            Some(_) => {
                return Err(format!(
                    "variant `{name}` carries data; the vendored serde derive supports only \
                     unit-variant enums"
                ))
            }
        }
    }
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut tokens = input.into_iter().peekable();
    // Item-level attributes and visibility.
    skip_attrs(&mut tokens);
    skip_visibility(&mut tokens);
    let is_enum = match tokens.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "struct" => false,
        Some(TokenTree::Ident(i)) if i.to_string() == "enum" => true,
        other => return Err(format!("expected `struct` or `enum`, got `{other:?}`")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, got `{other:?}`")),
    };
    let generics = parse_generics(&mut tokens)?;
    let kind = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Kind::UnitEnum(parse_unit_variants(&g)?)
            } else {
                Kind::NamedStruct(parse_named_fields(&g)?)
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let mut depth = 0usize;
            let mut commas = 0usize;
            for tt in g.stream() {
                match &tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => commas += 1,
                    _ => {}
                }
            }
            if commas > 0 {
                return Err(format!(
                    "tuple struct `{name}` has multiple fields; the vendored serde derive \
                     supports only newtype tuple structs"
                ));
            }
            Kind::Newtype
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
        other => return Err(format!("unexpected item body for `{name}`: `{other:?}`")),
    };
    Ok(Input {
        name,
        generics,
        kind,
    })
}

/// `<T: ::serde::Serialize>` / `<T>` pair for a given bound, or empty
/// strings for non-generic types.
fn generics_for(input: &Input, bound: &str) -> (String, String) {
    if input.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let impl_params: Vec<String> = input
            .generics
            .iter()
            .map(|p| format!("{p}: ::serde::{bound}"))
            .collect();
        (
            format!("<{}>", impl_params.join(", ")),
            format!("<{}>", input.generics.join(", ")),
        )
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let (impl_generics, ty_generics) = generics_for(&input, "Serialize");
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(::std::string::String::from({:?}), \
                         ::serde::Serialize::to_content(&self.{})),",
                        f.name, f.name
                    )
                })
                .collect();
            format!(
                "::serde::Content::Map(::std::vec![\n{}\n])",
                entries.join("\n")
            )
        }
        Kind::Newtype => "::serde::Serialize::to_content(&self.0)".to_string(),
        Kind::UnitStruct => "::serde::Content::Map(::std::vec![])".to_string(),
        Kind::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => {:?},", v))
                .collect();
            format!(
                "::serde::Content::Str(::std::string::String::from(match self {{\n{}\n}}))",
                arms.join("\n")
            )
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let (impl_generics, ty_generics) = generics_for(&input, "Deserialize");
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default(),", f.name)
                    } else {
                        format!(
                            "{}: ::serde::Deserialize::from_content(content.field({:?}))\
                             .map_err(|e| e.context({:?}))?,",
                            f.name,
                            f.name,
                            format!("{name}.{}", f.name)
                        )
                    }
                })
                .collect();
            format!(
                "if content.as_map().is_none() {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"expected map for {name}, got {{}}\", content.kind())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{\n{}\n}})",
                inits.join("\n")
            )
        }
        Kind::Newtype => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(content)?))"
        ),
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!("::std::option::Option::Some({:?}) => ::std::result::Result::Ok({name}::{v}),", v)
                })
                .collect();
            format!(
                "match content.as_str() {{\n{}\n\
                     ::std::option::Option::Some(other) => ::std::result::Result::Err(\
                         ::serde::Error::custom(::std::format!(\
                             \"unknown {name} variant {{other}}\"))),\n\
                     ::std::option::Option::None => ::std::result::Result::Err(\
                         ::serde::Error::custom(::std::format!(\
                             \"expected string for {name}, got {{}}\", content.kind()))),\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    format!(
        "impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
             fn from_content(content: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .unwrap()
}
