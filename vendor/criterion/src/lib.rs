//! Offline vendored criterion-compatible benchmark harness: same macro and
//! builder surface (`criterion_group!`/`criterion_main!`,
//! `Criterion::default().sample_size(..).measurement_time(..)`,
//! `bench_function`, `benchmark_group`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`), with a simple median-of-samples timer
//! instead of criterion's statistical machinery.

#![forbid(unsafe_code)]
// A benchmark harness exists to measure wall-clock; exempt from the
// workspace-wide `disallowed-methods` wall on `Instant::now` (clippy.toml).
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Sets how many timing samples to record per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the time budget one benchmark may spend measuring.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Runs a benchmark within the group.
    pub fn bench_function<I: std::fmt::Display, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            &mut f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: std::fmt::Display, T, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (formatting no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier with a function name and parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Passed to benchmark closures; drives the timed iterations.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    /// Times `routine`, recording one sample per batch of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + batch sizing: target ~budget/sample_size per sample.
        let warmup_start = Instant::now();
        black_box(routine());
        let one = warmup_start.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.budget / self.sample_size as u32;
        let iters_per_sample = (per_sample.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        let deadline = Instant::now() + self.budget;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    budget: Duration,
    f: &mut F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        budget,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{id:<48} median {median:>12?}  (min {min:?}, max {max:?}, {} samples)",
        samples.len()
    );
}

/// Declares a benchmark group; both the `name/config/targets` form and the
/// simple `criterion_group!(name, target, ...)` form are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(c: &mut Criterion) {
        c.bench_function("smoke/add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        let mut g = c.benchmark_group("smoke");
        g.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 3)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20));
        bench(&mut c);
    }
}
