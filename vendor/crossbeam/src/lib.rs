//! Offline vendored subset of `crossbeam`: scoped threads (over
//! `std::thread::scope`) and an unbounded mpmc channel. Only the surface
//! this workspace uses is provided; semantics match crossbeam where the
//! workspace relies on them (scope joins all threads before returning,
//! `recv` fails once all senders are gone).

pub use thread::scope;

pub mod thread {
    //! Scoped threads with the `crossbeam::thread::scope` signature.

    use std::any::Any;

    /// Spawn handle passed to the scope closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish and returns its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope itself (for nested spawns).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    let scope = Scope { inner: inner_scope };
                    f(&scope)
                }),
            }
        }
    }

    /// Creates a scope in which threads may borrow from the enclosing
    /// stack frame. All spawned threads are joined before `scope` returns.
    ///
    /// Unlike `std::thread::scope`, returns `Err` if any spawned (and not
    /// explicitly joined) thread panicked — matching crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }
}

pub mod channel {
    //! An unbounded mpmc channel (Mutex + Condvar backed).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a value; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.queue.lock().expect("channel poisoned");
            inner.items.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut inner = self.shared.queue.lock().expect("channel poisoned");
            inner.senders += 1;
            drop(inner);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.queue.lock().expect("channel poisoned");
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available, or errors once the channel
        /// is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(v) = inner.items.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).expect("channel poisoned");
            }
        }

        /// Returns an iterator that blocks on `recv` until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    /// Blocking iterator over received values.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn scope_propagates_panics_as_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_mpmc_roundtrip() {
        let (tx, rx) = channel::unbounded::<usize>();
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            for i in 0..50 {
                tx2.send(i).unwrap();
            }
        });
        for i in 50..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }
}
