//! Offline vendored `serde_json` subset: `to_string`, `to_string_pretty`,
//! `from_str`, and a `Value` alias over the vendored serde [`Content`]
//! tree. Output formatting follows serde_json conventions — 2-space
//! pretty indent, shortest-round-trip float printing (Rust `{:?}`, which
//! keeps a trailing `.0` on integral floats), struct fields in
//! declaration order.

#![forbid(unsafe_code)]

use serde::{Content, Deserialize, Serialize};

pub use serde::Error;

/// A parsed JSON value (alias of the serde interchange tree, which
/// carries `Index` and `PartialEq` sugar for test assertions).
pub type Value = Content;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let content = parse(text)?;
    T::from_content(&content)
}

fn write_content(out: &mut String, c: &Content, indent: Option<&str>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::F32(v) => {
            if v.is_finite() {
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, value, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error::custom(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(Error::custom(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error::custom(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::custom(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .or_else(|_| text.parse::<f64>().map(Content::F64))
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .or_else(|_| text.parse::<f64>().map(Content::F64))
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{08}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{0c}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.hex4()?;
                                let combined = 0x10000
                                    + ((first - 0xD800) << 10)
                                    + (second.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(first)
                            };
                            out.push(ch.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v: Vec<((i32, i32, i32), Vec<i16>)> =
            vec![((1, -2, 3), vec![10, -20]), ((0, 0, 0), vec![])];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[[1,-2,3],[10,-20]],[[0,0,0],[]]]");
        let back: Vec<((i32, i32, i32), Vec<i16>)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_format_is_two_space() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn floats_keep_point_zero() {
        let json = to_string(&vec![1.0f64, 0.25]).unwrap();
        assert_eq!(json, "[1.0,0.25]");
        let f: Vec<f32> = from_str("[0.3, 1e-3, -2.5E2]").unwrap();
        assert_eq!(f, vec![0.3, 0.001, -250.0]);
    }

    #[test]
    fn value_indexing() {
        let parsed: Value = from_str(r#"[{"tile": 8, "name": "esca", "ok": true}]"#).unwrap();
        assert_eq!(parsed[0]["tile"], 8);
        assert_eq!(parsed[0]["name"], "esca");
        assert_eq!(parsed[0]["ok"], true);
        assert_eq!(parsed[0]["missing"], Value::Null);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\n\t\"quoted\" \\ ünicode \u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("[1,").is_err());
    }
}
