//! Stress-workload integration tests: heavier and structurally different
//! inputs than the paper's (multi-object scenes, LiDAR sweeps), verifying
//! the accelerator stays bit-exact and within buffer budgets.

use esca::{Esca, EscaConfig};
use esca_pointcloud::{synthetic, voxelize};
use esca_sscn::quant::{quantize_tensor, submanifold_conv3d_q, QuantizedWeights};
use esca_sscn::weights::ConvWeights;
use esca_tensor::Extent3;

#[test]
fn multi_object_scene_bit_exact() {
    let cfg = synthetic::ShapeNetConfig {
        extent_voxels: 18.0,
        center: [48.0, 48.0, 48.0],
        ..Default::default()
    };
    let scene = synthetic::scene_of_objects(7, 4, &cfg);
    let input = voxelize::voxelize_occupancy(&scene, Extent3::cube(96));
    assert!(input.nnz() > 1500, "scene should be heavy: {}", input.nnz());

    let w = ConvWeights::seeded(3, 1, 16, 70);
    let qw = QuantizedWeights::auto(&w, 8, 12).unwrap();
    let qin = quantize_tensor(&input, qw.quant().act);
    let esca = Esca::new(EscaConfig::default()).unwrap();
    let run = esca.run_layer(&qin, &qw, true).unwrap();
    let golden = submanifold_conv3d_q(&qin, &qw, true).unwrap();
    assert!(run.output.same_content(&golden));
    // The scene spreads across many tiles (contrast to a single compact
    // object).
    assert!(run.stats.active_tiles > 30);
    assert!((run.stats.peak_act_buffer_bytes as usize) < esca.config().act_buffer_bytes);
}

#[test]
fn lidar_sweep_bit_exact_and_thin() {
    let lcfg = synthetic::LidarConfig {
        sensor: [96.0, 96.0, 100.0],
        ..Default::default()
    };
    let sweep = synthetic::lidar_like(5, &lcfg);
    let input = voxelize::voxelize_occupancy(&sweep, Extent3::cube(192));
    assert!(input.nnz() > 1000);
    // LiDAR shells are thin: mean match group far below the dense-surface
    // regime.
    let mmg = esca_sscn::ops::mean_match_group_size(&input, 3);
    assert!(mmg < 8.0, "lidar occupancy unexpectedly dense: {mmg}");

    let w = ConvWeights::seeded(3, 1, 16, 71);
    let qw = QuantizedWeights::auto(&w, 8, 12).unwrap();
    let qin = quantize_tensor(&input, qw.quant().act);
    let run = Esca::new(EscaConfig::default())
        .unwrap()
        .run_layer(&qin, &qw, false)
        .unwrap();
    let golden = submanifold_conv3d_q(&qin, &qw, false).unwrap();
    assert!(run.output.same_content(&golden));
}

#[test]
fn lidar_occupancy_differs_from_object_occupancy() {
    // The structural point of the extra generator: ring shells activate
    // far more tiles per active voxel than compact objects.
    let lidar = voxelize::voxelize_occupancy(
        &synthetic::lidar_like(1, &synthetic::LidarConfig::default()),
        Extent3::cube(192),
    );
    let object = voxelize::voxelize_occupancy(
        &synthetic::shapenet_like(1, &synthetic::ShapeNetConfig::default()),
        Extent3::cube(192),
    );
    let grid = esca_tensor::TileGrid::new(Extent3::cube(192), esca_tensor::TileShape::cube(8));
    let lt = grid.classify(&lidar.occupancy_mask());
    let ot = grid.classify(&object.occupancy_mask());
    let l_ratio = lt.active_tiles() as f64 / lidar.nnz() as f64;
    let o_ratio = ot.active_tiles() as f64 / object.nnz() as f64;
    assert!(
        l_ratio > 1.5 * o_ratio,
        "lidar tiles/voxel {l_ratio:.4} vs object {o_ratio:.4}"
    );
}
