//! Integration test for the paper's Fig. 2 contrast: traditional
//! convolution dilates sparsity; submanifold sparse convolution preserves
//! the active set exactly. Exercised end to end from a synthetic point
//! cloud through voxelization.

use esca_pointcloud::{synthetic, voxelize};
use esca_sscn::conv::{dense_conv3d, submanifold_conv3d};
use esca_sscn::weights::ConvWeights;
use esca_tensor::{Extent3, SparseTensor};

fn small_object_grid() -> SparseTensor<f32> {
    let cfg = synthetic::ShapeNetConfig {
        extent_voxels: 12.0,
        center: [16.0, 16.0, 16.0],
        ..Default::default()
    };
    let cloud = synthetic::shapenet_like(3, &cfg);
    voxelize::voxelize_occupancy(&cloud, Extent3::cube(32))
}

#[test]
fn traditional_conv_dilates_point_cloud_sparsity() {
    let input = small_object_grid();
    assert!(input.nnz() > 50, "object should voxelize to a real surface");
    let mut w = ConvWeights::zeros(3, 1, 1);
    for tap in 0..27 {
        w.set_w(tap, 0, 0, 0.1);
    }
    let dense_out = dense_conv3d(&input.to_dense(), &w).unwrap();
    assert!(
        dense_out.nonzero_sites() > input.nnz() * 2,
        "dilation expected: {} -> {}",
        input.nnz(),
        dense_out.nonzero_sites()
    );
}

#[test]
fn submanifold_conv_preserves_point_cloud_sparsity() {
    let input = small_object_grid();
    let w = ConvWeights::seeded(3, 1, 8, 1);
    let out = submanifold_conv3d(&input, &w).unwrap();
    assert!(out.same_active_set(&input));
    assert!((out.sparsity() - input.sparsity()).abs() < 1e-12);
}

#[test]
fn repeated_subconv_never_dilates() {
    // Stack several Sub-Conv layers: the active set must stay fixed, which
    // is exactly why SSCN is usable at 99.9% sparsity.
    let input = small_object_grid();
    let w1 = ConvWeights::seeded(3, 1, 4, 2);
    let w2 = ConvWeights::seeded(3, 4, 4, 3);
    let w3 = ConvWeights::seeded(3, 4, 2, 4);
    let mut x = submanifold_conv3d(&input, &w1).unwrap();
    x = submanifold_conv3d(&x, &w2).unwrap();
    x = submanifold_conv3d(&x, &w3).unwrap();
    assert!(x.same_active_set(&input));
}
