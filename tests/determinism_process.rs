//! Cross-process determinism regression: the full SS U-Net forward pass —
//! direct kernels, the flat rulebook engine, and the sharded accelerator
//! path — must produce **byte-identical** outputs in a fresh process with
//! a perturbed environment.
//!
//! In-process repetition cannot catch an entire class of nondeterminism:
//! hasher seeds (`RandomState` draws per *process*), allocator layout and
//! pointer-keyed ordering all stay fixed within one process and only vary
//! across runs. So this test re-spawns its own test binary (the standard
//! libtest self-exec trick) with `RUST_*` environment perturbations —
//! which also shift the initial stack/environ layout — and compares the
//! bit patterns of every output against the parent's.

use esca::{Esca, EscaConfig};
use esca_sscn::engine::FlatEngine;
use esca_sscn::gemm::GemmBackendKind;
use esca_sscn::quant::{dequantize_tensor, quantize_tensor, QuantizedWeights};
use esca_sscn::unet::{SsUNet, UNetConfig};
use esca_tensor::{Coord3, Extent3, SparseTensor};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::process::Command;

const CHILD_ENV: &str = "ESCA_DETERMINISM_CHILD";
const BEGIN: &str = "DET_BEGIN\n";
const END: &str = "DET_END";

fn fixture_input() -> SparseTensor<f32> {
    let mut rng = ChaCha8Rng::seed_from_u64(0xDE7E2);
    let mut t = SparseTensor::new(Extent3::cube(20), 1);
    for _ in 0..150 {
        let c = Coord3::new(
            rng.gen_range(0..20),
            rng.gen_range(0..20),
            rng.gen_range(0..20),
        );
        let _ = t.insert(c, &[rng.gen_range(-1.0..1.0)]);
    }
    t.canonicalize();
    t
}

fn net() -> SsUNet {
    SsUNet::new(UNetConfig {
        input_channels: 1,
        levels: 2,
        base_channels: 6,
        blocks_per_level: 1,
        classes: 4,
        kernel: 3,
        seed: 77,
    })
    .expect("invariant: fixture U-Net config is valid")
}

/// Hex dump of a tensor's exact bit content: geometry, storage order and
/// every feature's bit pattern.
fn encode(t: &SparseTensor<f32>) -> String {
    let mut s = String::new();
    for c in t.coords() {
        s.push_str(&format!("{:x},{:x},{:x};", c.x, c.y, c.z));
    }
    s.push('|');
    for f in t.features() {
        s.push_str(&format!("{:08x}", f.to_bits()));
    }
    s
}

/// Runs the three execution paths and fingerprints each one.
fn compute() -> String {
    let input = fixture_input();
    let network = net();

    let direct = network.forward(&input).expect("direct forward runs");
    let flat = network
        .forward_engine(
            &input,
            &mut FlatEngine::with_backend(GemmBackendKind::ScalarRef),
        )
        .expect("flat-engine forward runs");
    // Invariant 1 (bit-exactness): the scalar-ref flat engine replays the
    // direct kernels' accumulation order exactly.
    assert_eq!(
        encode(&direct),
        encode(&flat),
        "flat engine diverged from direct kernels"
    );

    // The blocked GEMM tier reassociates float adds, so it is only
    // epsilon-bounded against the direct path — but it must still be a
    // pure function of the input: its fingerprint joins the cross-process
    // comparison below and has to match byte-for-byte in every child.
    let blocked = network
        .forward_engine(
            &input,
            &mut FlatEngine::with_backend(GemmBackendKind::Blocked),
        )
        .expect("blocked flat-engine forward runs");

    // Sharded accelerator path, mirroring `esca::system::run_unet`'s
    // executor but splitting each layer across 3 workers.
    let esca = Esca::new(EscaConfig::default()).expect("invariant: default config is valid");
    let sharded_with = |workers: usize| {
        network
            .forward_with(&input, |_, _, w, x| {
                let qw = QuantizedWeights::auto(w, 8, 12).map_err(|e| {
                    esca_sscn::SscnError::InvalidConfig {
                        reason: format!("quantization failed: {e}"),
                    }
                })?;
                let qin = quantize_tensor(x, qw.quant().act);
                let run = esca
                    .run_layer_sharded_opts(&qin, &qw, true, true, workers)
                    .map_err(|e| esca_sscn::SscnError::InvalidConfig {
                        reason: e.to_string(),
                    })?;
                Ok(dequantize_tensor(&run.output, qw.quant().out))
            })
            .expect("sharded forward runs")
    };
    let sharded = sharded_with(3);
    // Invariant 3 (worker-invariance): shard count must not leak into
    // the numbers.
    assert_eq!(
        encode(&sharded),
        encode(&sharded_with(1)),
        "worker count changed the sharded output"
    );

    format!(
        "direct:{}\nflat:{}\nblocked:{}\nsharded:{}\n",
        encode(&direct),
        encode(&flat),
        encode(&blocked),
        encode(&sharded)
    )
}

/// Re-runs this very test in a child process with `extra_env` applied and
/// returns the fingerprint it prints.
fn spawn_child(extra_env: &[(&str, &str)]) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.args([
        "outputs_are_byte_identical_across_processes",
        "--exact",
        "--nocapture",
    ]);
    cmd.env(CHILD_ENV, "1");
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("child test process spawns");
    assert!(
        out.status.success(),
        "child run failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("child output is UTF-8");
    let begin = stdout.find(BEGIN).expect("child printed begin marker") + BEGIN.len();
    let end = stdout[begin..].find(END).expect("child printed end marker") + begin;
    stdout[begin..end].to_string()
}

#[test]
fn outputs_are_byte_identical_across_processes() {
    if std::env::var_os(CHILD_ENV).is_some() {
        // Child mode: fingerprint the three paths and hand the bytes to
        // the parent over stdout.
        println!("{BEGIN}{}{END}", compute());
        return;
    }

    let here = compute();
    // Two children with deliberately different environments: different
    // env-block sizes shift initial memory layout, and the RUST_* vars
    // are the ones ad-hoc tooling most commonly sets.
    let quiet = spawn_child(&[("RUST_BACKTRACE", "0")]);
    let noisy = spawn_child(&[
        ("RUST_BACKTRACE", "full"),
        ("RUST_LOG", "trace"),
        ("ESCA_DETERMINISM_PAD", "x".repeat(4096).as_str()),
    ]);

    assert_eq!(here, quiet, "child (quiet env) diverged from parent");
    assert_eq!(here, noisy, "child (noisy env) diverged from parent");
}
