//! End-to-end observability-plane tests: the live exposition server
//! scraped during an active stream, cycle-family byte-identity across
//! `(workers, shards)` splits, the flight recorder's one-terminal-event-
//! per-frame invariant under a chaos campaign, and the nested
//! frame → attempt → layer span trace.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use esca::admission::{AdmissionConfig, Arrival, TenantQuota};
use esca::resilience::{FaultClass, FaultConfig};
use esca::streaming::StreamingSession;
use esca::{Esca, EscaConfig};
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
use esca_sscn::weights::ConvWeights;
use esca_telemetry::serve::{http_get, MetricsServer, ObservabilityHub};
use esca_telemetry::MetricsSnapshot;
use esca_tensor::{Coord3, Extent3, QuantParams, SparseTensor, Q16};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn frame(seed: u64) -> SparseTensor<Q16> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = SparseTensor::<f32>::new(Extent3::cube(14), 2);
    let n = rng.gen_range(30..90);
    for _ in 0..n {
        let c = Coord3::new(
            rng.gen_range(0..14),
            rng.gen_range(0..14),
            rng.gen_range(0..14),
        );
        let f: Vec<f32> = (0..2).map(|_| rng.gen_range(-2.0..2.0)).collect();
        t.insert(c, &f).unwrap();
    }
    t.canonicalize();
    quantize_tensor(&t, QuantParams::new(8).unwrap())
}

fn stack() -> Vec<(QuantizedWeights, bool)> {
    vec![
        (
            QuantizedWeights::auto(&ConvWeights::seeded(3, 2, 8, 91), 8, 10).unwrap(),
            true,
        ),
        (
            QuantizedWeights::auto(&ConvWeights::seeded(3, 8, 4, 92), 8, 10).unwrap(),
            false,
        ),
    ]
}

const SPLITS: [(usize, usize); 4] = [(1, 1), (2, 1), (4, 1), (2, 2)];

/// Family names of the cycle domain, plus the derived histogram series
/// names (`_bucket`, `_sum`, `_count`) the exposition emits for them.
fn cycle_series_names(cycle: &MetricsSnapshot) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for c in &cycle.counters {
        names.insert(c.name.clone());
    }
    for g in &cycle.gauges {
        names.insert(g.name.clone());
    }
    for h in &cycle.histograms {
        names.insert(h.name.clone());
        names.insert(format!("{}_bucket", h.name));
        names.insert(format!("{}_sum", h.name));
        names.insert(format!("{}_count", h.name));
    }
    names
}

/// The metric name a physical exposition line belongs to: the third
/// token for `# HELP`/`# TYPE` comment lines, otherwise the leading
/// token up to `{` or the sample-value separator.
fn line_family(line: &str) -> Option<&str> {
    if let Some(rest) = line
        .strip_prefix("# HELP ")
        .or_else(|| line.strip_prefix("# TYPE "))
    {
        return rest.split(' ').next();
    }
    if line.starts_with('#') || line.is_empty() {
        return None;
    }
    line.split(['{', ' ']).next()
}

/// Keeps only the exposition lines of cycle-domain families.
fn cycle_lines(text: &str, names: &BTreeSet<String>) -> String {
    text.lines()
        .filter(|l| line_family(l).is_some_and(|f| names.contains(f)))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn metrics_scraped_live_are_cycle_identical_across_splits() {
    let frames: Vec<_> = (0..16).map(|i| frame(0x0B5E + i)).collect();
    let mut cycle_texts: Vec<String> = Vec::new();
    for (workers, shards) in SPLITS {
        let hub = Arc::new(ObservabilityHub::new());
        let mut server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&hub)).unwrap();
        let addr = server.local_addr();

        // Scrape every route continuously while the stream is running:
        // the hub swap must never block or wedge the hot path, and every
        // response must be well-formed regardless of arrival timing.
        let done = Arc::new(AtomicBool::new(false));
        let done_scraper = Arc::clone(&done);
        let scraper = std::thread::spawn(move || {
            let mut scrapes = 0u32;
            while !done_scraper.load(Ordering::Relaxed) {
                for path in ["/metrics", "/healthz", "/snapshot", "/flight"] {
                    let resp = http_get(addr, path).unwrap();
                    assert!(
                        resp.status == 200 || (path == "/healthz" && resp.status == 503),
                        "{path} returned {} mid-stream",
                        resp.status
                    );
                }
                scrapes += 1;
            }
            scrapes
        });

        let esca = Esca::new(EscaConfig::default()).unwrap();
        let session = StreamingSession::new(esca, stack(), workers)
            .with_layer_shards(shards)
            .with_hub(Arc::clone(&hub));
        let report = session.run_batch(&frames).unwrap();
        done.store(true, Ordering::Relaxed);
        assert!(
            scraper.join().unwrap() >= 1,
            "scraper never completed a pass"
        );

        // The final snapshot is published before run_batch returns, so a
        // fresh scrape now serves the campaign-complete exposition.
        let metrics = http_get(addr, "/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        let names = cycle_series_names(&report.telemetry.cycle);
        assert!(
            names.contains("esca_frame_cycles"),
            "cycle snapshot is missing the per-frame cycle histogram"
        );
        let filtered = cycle_lines(&metrics.body, &names);
        assert!(!filtered.is_empty(), "no cycle-family lines in /metrics");
        // Spec conformance: one HELP and one TYPE per cycle family, and
        // the whole exposition carries no duplicate TYPE lines at all.
        for f in &names {
            let typed = format!("# TYPE {f} ");
            let count = metrics
                .body
                .lines()
                .filter(|l| l.starts_with(&typed))
                .count();
            if metrics.body.contains(&format!("\n{f}")) || metrics.body.starts_with(f.as_str()) {
                assert!(count <= 1, "family {f} has {count} TYPE lines");
            }
        }
        let health = http_get(addr, "/healthz").unwrap();
        assert_eq!(health.status, 200, "healthy stream must report 200");
        assert!(health.body.contains("\"phase\": \"done\""));
        server.shutdown();
        cycle_texts.push(filtered);
    }
    for (i, text) in cycle_texts.iter().enumerate().skip(1) {
        assert_eq!(
            text, &cycle_texts[0],
            "cycle families of split {:?} differ from the (1,1) baseline",
            SPLITS[i]
        );
    }
}

#[test]
fn chaos_campaign_flight_dump_has_one_terminal_event_per_frame() {
    let frames: Vec<_> = (0..12).map(|i| frame(0xF11 + i)).collect();
    // Campaign rates inject worker panics (verified below); bounded
    // admission additionally forces rejected frames into the dump.
    let mut cfg = FaultConfig::campaign(0xC4A05);
    cfg.recovery.admission_depth = Some(10);

    let hub = Arc::new(ObservabilityHub::new());
    let esca = Esca::new(EscaConfig::default()).unwrap();
    let session = StreamingSession::new(esca, stack(), 3).with_hub(Arc::clone(&hub));
    let report = session.run_batch_resilient(&frames, &cfg).unwrap();

    assert!(
        report.counters.injected[FaultClass::WorkerPanic as usize] > 0,
        "campaign seed must inject at least one worker panic"
    );
    assert_eq!(report.counters.dropped_frames, 2, "admission must reject 2");

    let dump = hub.flight_dump();
    assert_eq!(dump.recorded, frames.len() as u64);
    assert_eq!(dump.evicted, 0);
    // Exactly one terminal event per frame, no duplicates, no gaps.
    let seen: BTreeSet<u64> = dump.events.iter().map(|e| e.frame).collect();
    assert_eq!(dump.events.len(), frames.len());
    assert_eq!(seen.len(), frames.len());
    assert_eq!(*seen.iter().next().unwrap(), 0);
    assert_eq!(*seen.iter().last().unwrap(), frames.len() as u64 - 1);

    // The outcome partition of the dump matches the campaign counters.
    let count = |outcome: &str| dump.events.iter().filter(|e| e.outcome == outcome).count() as u64;
    assert_eq!(count("ok"), report.counters.ok_frames);
    assert_eq!(count("retried"), report.counters.retried_frames);
    assert_eq!(count("failed"), report.counters.failed_frames);
    assert_eq!(count("dropped"), report.counters.dropped_frames);
    for ev in &dump.events {
        let fr = &report.frames[ev.frame as usize];
        assert_eq!(ev.outcome, fr.outcome.label(), "frame {}", ev.frame);
        assert_eq!(
            ev.retries,
            u64::from(fr.attempts.saturating_sub(1)),
            "frame {}",
            ev.frame
        );
        assert_eq!(ev.fell_back, fr.fell_back);
        assert_eq!(ev.silent_corruption, fr.silent_corruption);
        if ev.outcome == "dropped" {
            assert_eq!(ev.admission, "rejected");
            assert_eq!(ev.cycles, 0);
        } else {
            assert_eq!(ev.admission, "admitted");
        }
        assert_eq!(ev.faults.len(), fr.injected.len(), "frame {}", ev.frame);
    }
    // A worker-panic fault is visible in at least one event's fault log.
    assert!(
        dump.events
            .iter()
            .any(|e| e.faults.iter().any(|f| f.contains("worker_panic"))),
        "no worker_panic fault recorded in the flight ring"
    );
    // The dump replays through JSON byte-stably.
    let json = hub.flight().to_json().unwrap();
    assert!(json.contains("\"events\""));
}

#[test]
fn ingest_flight_events_partition_across_every_admission_verdict() {
    // One burst covering the full shedding ladder: admitted, degraded,
    // shed{T}, over_quota and rejected all land in the flight ring as
    // exactly one terminal event per frame.
    let frames: Vec<_> = (0..6).map(|i| frame(0xF22 + i)).collect();
    let arrivals: Vec<Arrival> = [9u32, 3, 3, 9, 9, 9]
        .iter()
        .enumerate()
        .map(|(i, &tenant)| Arrival {
            frame: i,
            tenant,
            at_cycle: 0,
        })
        .collect();
    let admission = AdmissionConfig {
        queue_depth: 3,
        drain_cycles: u64::MAX,
        degrade_occupancy_pct: 66,
        tenants: vec![
            TenantQuota {
                tenant: 9,
                cycles_per_token: 0,
                burst: 0,
                priority: 1,
            },
            TenantQuota {
                tenant: 3,
                cycles_per_token: 1_000_000,
                burst: 1,
                priority: 0,
            },
        ],
        ..AdmissionConfig::default()
    };
    let cfg = FaultConfig::off(0xF22);

    let hub = Arc::new(ObservabilityHub::new());
    let esca = Esca::new(EscaConfig::default()).unwrap();
    let session = StreamingSession::new(esca, stack(), 3).with_hub(Arc::clone(&hub));
    let report = session
        .run_batch_ingest(&frames, &arrivals, &cfg, &admission)
        .unwrap();

    let dump = hub.flight_dump();
    assert_eq!(dump.recorded, frames.len() as u64);
    let seen: BTreeSet<u64> = dump.events.iter().map(|e| e.frame).collect();
    assert_eq!(seen.len(), frames.len(), "one terminal event per frame");

    // Frame 0 admits at full fidelity; tenant 3's first frame takes the
    // last room before the degrade threshold but is later shed by a
    // higher-priority arrival; its second is over quota; frames 3 and 4
    // admit degraded; the final arrival finds only same-priority
    // waiters and is rejected.
    let verdict = |f: u64| {
        dump.events
            .iter()
            .find(|e| e.frame == f)
            .map(|e| e.admission.clone())
            .unwrap()
    };
    assert_eq!(verdict(0), "admitted");
    assert_eq!(verdict(1), "shed{3}");
    assert_eq!(verdict(2), "over_quota");
    assert_eq!(verdict(3), "degraded");
    assert_eq!(verdict(4), "degraded");
    assert_eq!(verdict(5), "rejected");
    for ev in &dump.events {
        let fr = &report.frames[ev.frame as usize];
        assert_eq!(ev.outcome, fr.outcome.label());
        assert_eq!(ev.tenant, u64::from(fr.tenant));
        let runs = ev.admission == "admitted" || ev.admission == "degraded";
        assert_eq!(ev.outcome == "ok", runs, "frame {}", ev.frame);
    }

    // Degraded admission is resident-plan-only: outputs stay
    // bit-identical to an unconstrained run of the same frames.
    let esca = Esca::new(EscaConfig::default()).unwrap();
    let baseline = StreamingSession::new(esca, stack(), 3)
        .run_batch(&frames)
        .unwrap();
    for f in [0usize, 3, 4] {
        let out = report.outputs[f].as_ref().unwrap();
        assert_eq!(out.coords(), baseline.outputs[f].coords());
        assert_eq!(out.features(), baseline.outputs[f].features());
    }
    assert_eq!(report.counters.degraded_frames, 2);
}

#[test]
fn span_trace_nests_frames_attempts_and_layers_identically_across_splits() {
    let frames: Vec<_> = (0..8).map(|i| frame(0x59A6 + i)).collect();
    let mut fingerprints: Vec<String> = Vec::new();
    for (workers, shards) in SPLITS {
        let esca = Esca::new(EscaConfig::default()).unwrap();
        let session = StreamingSession::new(esca, stack(), workers).with_layer_shards(shards);
        let report = session.run_batch(&frames).unwrap();
        let trace = report.to_span_trace();

        // Structure: per frame (pid) one `frame` span, one `attempt`
        // span nested at the same extent, and one `layer` span per
        // network layer inside it, with in-track ts monotonic.
        let mut fp = String::new();
        for idx in 0..frames.len() {
            let pid = idx as u32;
            let events: Vec<_> = trace.traceEvents.iter().filter(|e| e.pid == pid).collect();
            let frames_evs: Vec<_> = events.iter().filter(|e| e.cat == "frame").collect();
            let attempts: Vec<_> = events.iter().filter(|e| e.cat == "attempt").collect();
            let layers: Vec<_> = events.iter().filter(|e| e.cat == "layer").collect();
            assert_eq!(frames_evs.len(), 1, "frame {idx}: expected one frame span");
            assert_eq!(attempts.len(), 1, "frame {idx}: expected one attempt span");
            assert_eq!(
                layers.len(),
                stack().len(),
                "frame {idx}: one span per layer"
            );
            let total = frames_evs[0].dur;
            assert_eq!(attempts[0].dur, total, "attempt must cover the frame");
            let mut prev_ts = 0;
            for l in &layers {
                assert!(l.ts >= prev_ts, "frame {idx}: layer ts must not decrease");
                assert!(l.ts + l.dur <= total, "frame {idx}: layer escapes frame");
                prev_ts = l.ts;
            }
            // Cycle-domain fingerprint: everything except args.detail
            // (worker/shards live there and legitimately vary).
            for e in &events {
                fp.push_str(&format!(
                    "{}|{}|{}|{}|{}|{};",
                    e.cat, e.name, e.ts, e.dur, e.pid, e.tid
                ));
            }
            fp.push('\n');
        }
        fingerprints.push(fp);
    }
    for (i, fp) in fingerprints.iter().enumerate().skip(1) {
        assert_eq!(
            fp, &fingerprints[0],
            "span trace of split {:?} diverged from the (1,1) baseline",
            SPLITS[i]
        );
    }
}
