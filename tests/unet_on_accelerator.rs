//! Full-network integration: a (reduced) SS U-Net segments a synthetic
//! scene; every Sub-Conv layer is replayed on the ESCA accelerator model
//! and verified bit-exact against the quantized golden reference.

use esca::{CycleStats, Esca, EscaConfig};
use esca_pointcloud::{synthetic, voxelize};
use esca_sscn::quant::{quantize_tensor, submanifold_conv3d_q, QuantizedWeights};
use esca_sscn::unet::{SsUNet, UNetConfig};
use esca_tensor::Extent3;

fn small_unet() -> SsUNet {
    SsUNet::new(UNetConfig {
        input_channels: 1,
        levels: 2,
        base_channels: 8,
        blocks_per_level: 1,
        classes: 4,
        kernel: 3,
        seed: 77,
    })
    .unwrap()
}

fn scene() -> esca_tensor::SparseTensor<f32> {
    let cfg = synthetic::NyuConfig {
        extent_voxels: 16.0,
        center: [16.0, 16.0, 16.0],
        furniture: 2,
        ..Default::default()
    };
    voxelize::voxelize_occupancy(&synthetic::nyu_like(21, &cfg), Extent3::cube(48))
}

#[test]
fn every_unet_subconv_replays_bit_exact_on_esca() {
    let net = small_unet();
    let input = scene();
    assert!(input.nnz() > 100);
    let (logits, traces) = net.forward_trace(&input).unwrap();
    assert_eq!(traces.len(), net.subconv_layers().len());
    assert!(logits.same_active_set(&input));

    let esca = Esca::new(EscaConfig::default()).unwrap();
    let mut total = CycleStats::default();
    for t in &traces {
        let (name, w) = &net.subconv_layers()[t.index];
        let qw = QuantizedWeights::auto(w, 8, 12).unwrap();
        let qin = quantize_tensor(&t.input, qw.quant().act);
        let run = esca.run_layer(&qin, &qw, true).unwrap();
        let golden = submanifold_conv3d_q(&qin, &qw, true).unwrap();
        assert!(
            run.output.same_content(&golden),
            "layer {name} diverged on the accelerator"
        );
        total += &run.stats;
    }
    // The aggregate run did real work and the metrics are consistent.
    assert!(total.matches > 0);
    assert!(total.effective_macs > total.matches);
    assert!(total.total_cycles() > total.pipeline_cycles);
    assert!(total.effective_gops(270.0) > 0.0);
}

#[test]
fn unet_predictions_cover_every_input_voxel() {
    let net = small_unet();
    let input = scene();
    let preds = net.predict(&input).unwrap();
    assert_eq!(preds.len(), input.nnz());
    let classes = net.config().classes;
    assert!(preds
        .iter()
        .all(|(c, k)| input.contains(*c) && *k < classes));
}

#[test]
fn deeper_levels_shrink_the_active_set() {
    // The encoder's strided convs must reduce nnz monotonically.
    let net = small_unet();
    let input = scene();
    let (_, traces) = net.forward_trace(&input).unwrap();
    // stem and enc0 run at full resolution; enc1 at half.
    let full = traces.first().unwrap().input.nnz();
    let coarse = traces
        .iter()
        .find(|t| t.name == "enc1.conv0")
        .unwrap()
        .input
        .nnz();
    assert!(
        coarse < full,
        "downsampling should shrink nnz: {full} -> {coarse}"
    );
}
