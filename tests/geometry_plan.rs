//! Suite-level invariants of the whole-network GeometryPlan cache (see
//! DESIGN.md §7.2 "GeometryPlan contract"):
//!
//! * a 16-frame static-scene stream builds its geometry exactly once —
//!   every frame after the first replays the recorded plan (100% plan
//!   hit rate) with zero rulebook probes and zero map construction;
//! * the same holds for the full networks that carry strided/transpose
//!   site maps (SS U-Net) and pooling maps (SSCN classifier);
//! * with the plan cache enabled, the cycle-domain telemetry snapshot
//!   stays byte-identical across (workers, shards) splits and GEMM
//!   backends, with every static frame after the first matching-resident
//!   at zero match cycles;
//! * an LRU-evicting, byte-budgeted cache changes throughput only —
//!   never an output byte.

use esca::streaming::StreamingSession;
use esca::{Esca, EscaConfig};
use esca_sscn::classifier::{ClassifierConfig, SscnClassifier};
use esca_sscn::engine::FlatEngine;
use esca_sscn::gemm::GemmBackendKind;
use esca_sscn::plan::PlanCache;
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
use esca_sscn::unet::{SsUNet, UNetConfig};
use esca_sscn::weights::ConvWeights;
use esca_tensor::{Coord3, Extent3, QuantParams, SparseTensor, Q16};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn geometry(seed: u64, side: u32, n: usize, channels: usize) -> SparseTensor<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = SparseTensor::<f32>::new(Extent3::cube(side), channels);
    for _ in 0..n {
        let c = Coord3::new(
            rng.gen_range(0..side as i32),
            rng.gen_range(0..side as i32),
            rng.gen_range(0..side as i32),
        );
        let f: Vec<f32> = (0..channels).map(|_| rng.gen_range(-2.0..2.0)).collect();
        t.insert(c, &f).unwrap();
    }
    t.canonicalize();
    t
}

fn frame_q(seed: u64) -> SparseTensor<Q16> {
    quantize_tensor(&geometry(seed, 14, 60, 2), QuantParams::new(8).unwrap())
}

fn stack() -> Vec<(QuantizedWeights, bool)> {
    vec![
        (
            QuantizedWeights::auto(&ConvWeights::seeded(3, 2, 8, 91), 8, 10).unwrap(),
            true,
        ),
        (
            QuantizedWeights::auto(&ConvWeights::seeded(3, 8, 4, 92), 8, 10).unwrap(),
            false,
        ),
    ]
}

#[test]
fn static_scene_stream_replays_the_plan_for_every_frame_after_the_first() {
    let frames: Vec<_> = vec![frame_q(0x9137); 16];

    // Reference: per-op rulebook caching only.
    let esca = Esca::new(EscaConfig::default()).unwrap();
    let reference = StreamingSession::new(esca, stack(), 1).with_plan_cache(None);
    let want = reference.run_golden_batch(&frames).unwrap();

    // How much rulebook-cache traffic one frame generates (record pass).
    let esca = Esca::new(EscaConfig::default()).unwrap();
    let one =
        StreamingSession::new(esca, stack(), 1).with_plan_cache(Some(Arc::new(PlanCache::new())));
    let _ = one.run_golden_batch(&frames[..1]).unwrap();
    let probes_one_frame = one.rulebook_cache().hits() + one.rulebook_cache().misses();

    let plans = Arc::new(PlanCache::new());
    let esca = Esca::new(EscaConfig::default()).unwrap();
    let session = StreamingSession::new(esca, stack(), 1).with_plan_cache(Some(Arc::clone(&plans)));
    let got = session.run_golden_batch(&frames).unwrap();
    for (w, g) in want.iter().zip(&got) {
        assert_eq!(w.coords(), g.coords());
        assert_eq!(w.features(), g.features(), "plan replay changed an output");
    }

    // Frame 0 misses and records; frames 1..=15 all hit: 100% hit rate
    // past the first frame, and zero rulebook construction or probes —
    // the 16-frame batch generates exactly one frame's worth of traffic.
    assert_eq!((plans.misses(), plans.hits()), (1, 15));
    assert_eq!(
        session.rulebook_cache().hits() + session.rulebook_cache().misses(),
        probes_one_frame,
        "frames >= 2 must not touch the per-op rulebook cache"
    );
}

#[test]
fn unet_and_classifier_build_no_geometry_after_the_first_pass() {
    // SS U-Net: Sub-Conv rulebooks + strided/transpose site maps.
    let net = SsUNet::new(UNetConfig {
        input_channels: 1,
        levels: 2,
        base_channels: 8,
        blocks_per_level: 1,
        classes: 4,
        kernel: 3,
        seed: 77,
    })
    .unwrap();
    let input = geometry(0xA11CE, 24, 250, 1);
    let plans = Arc::new(PlanCache::new());
    let mut engine = FlatEngine::with_backend(GemmBackendKind::ScalarRef)
        .with_plan_cache(Some(Arc::clone(&plans)));
    let first = net.forward_engine(&input, &mut engine).unwrap();
    let probes = engine.cache().hits() + engine.cache().misses();
    let bytes = plans.bytes();
    for _ in 1..16 {
        let again = net.forward_engine(&input, &mut engine).unwrap();
        assert_eq!(again.coords(), first.coords());
        assert_eq!(again.features(), first.features(), "replay diverged");
    }
    assert_eq!((plans.misses(), plans.hits()), (1, 15));
    assert_eq!(
        engine.cache().hits() + engine.cache().misses(),
        probes,
        "replay passes must not probe the per-op caches"
    );
    assert_eq!(
        plans.bytes(),
        bytes,
        "replay passes must not grow the cache"
    );

    // SSCN classifier: the same contract over its pooling maps.
    let net = SscnClassifier::new(ClassifierConfig {
        input_channels: 1,
        stages: 2,
        base_channels: 4,
        classes: 5,
        kernel: 3,
        seed: 3,
    })
    .unwrap();
    let input = geometry(0xB0B, 16, 60, 1);
    let plans = Arc::new(PlanCache::new());
    let mut engine = FlatEngine::with_backend(GemmBackendKind::ScalarRef)
        .with_plan_cache(Some(Arc::clone(&plans)));
    let first = net.forward_engine(&input, &mut engine).unwrap();
    let probes = engine.cache().hits() + engine.cache().misses();
    for _ in 1..16 {
        let again = net.forward_engine(&input, &mut engine).unwrap();
        assert_eq!(again, first, "classifier replay diverged");
    }
    assert_eq!((plans.misses(), plans.hits()), (1, 15));
    assert_eq!(
        engine.cache().hits() + engine.cache().misses(),
        probes,
        "pooling maps must come from the plan, not fresh builds"
    );
}

#[test]
fn plan_hit_cycle_telemetry_is_byte_identical_across_splits_and_backends() {
    // The cycle model derives matching-residency hints before any frame
    // is submitted, so plan hits must not cost a byte of cycle-domain
    // determinism: same snapshot for every (workers, shards) split and
    // every GEMM backend.
    let frames: Vec<_> = vec![frame_q(0xD15C); 8];
    let mut snapshots: Vec<String> = Vec::new();
    for kind in GemmBackendKind::ALL {
        for (workers, shards) in [(1usize, 1usize), (2, 1), (4, 1), (2, 2)] {
            let esca = Esca::new(EscaConfig::default()).unwrap();
            let session = StreamingSession::new(esca, stack(), workers)
                .with_layer_shards(shards)
                .with_gemm_backend(kind)
                .with_plan_cache(Some(Arc::new(PlanCache::new())));
            let report = session.run_batch(&frames).unwrap();
            // Zero-matching steady state: every frame after the first is
            // matching-resident and charges no match cycles.
            for (i, s) in report.per_frame.iter().enumerate().skip(1) {
                assert!(s.matching_resident, "frame {i} not matching-resident");
                assert_eq!(s.match_cycles, 0, "frame {i} charged match cycles");
            }
            assert!(!report.per_frame[0].matching_resident);
            assert!(report.per_frame[0].match_cycles > 0);
            snapshots.push(serde_json::to_string(&report.telemetry.cycle).unwrap());
        }
    }
    assert!(snapshots[0].contains("esca_stream_resident_frames_total"));
    assert!(snapshots[0].contains("esca_match_cycles_total"));
    for (i, s) in snapshots.iter().enumerate().skip(1) {
        assert_eq!(
            s, &snapshots[0],
            "cycle snapshot of run {i} differs under plan-cached streaming"
        );
    }
}

#[test]
fn evicting_plan_cache_changes_throughput_only_never_outputs() {
    // Alternate two geometries through a cache that can hold only one
    // plan: constant LRU eviction, zero result drift.
    let a = frame_q(0xAAAA);
    let b = frame_q(0xBBBB);
    let frames: Vec<_> = (0..8)
        .map(|i| if i % 2 == 0 { a.clone() } else { b.clone() })
        .collect();

    let esca = Esca::new(EscaConfig::default()).unwrap();
    let reference = StreamingSession::new(esca, stack(), 1).with_plan_cache(None);
    let want = reference.run_golden_batch(&frames).unwrap();

    let tiny = Arc::new(PlanCache::with_capacity_bytes(1));
    let esca = Esca::new(EscaConfig::default()).unwrap();
    let session = StreamingSession::new(esca, stack(), 1).with_plan_cache(Some(Arc::clone(&tiny)));
    let got = session.run_golden_batch(&frames).unwrap();
    for (w, g) in want.iter().zip(&got) {
        assert_eq!(w.coords(), g.coords());
        assert_eq!(w.features(), g.features(), "eviction changed an output");
    }
    assert!(
        tiny.evictions() > 0,
        "the 1-byte budget must actually evict"
    );
    assert!(
        tiny.bytes() > 0 && tiny.len() == 1,
        "one plan stays resident"
    );

    // Unbounded cache over the same batch: same bytes out, better reuse.
    let roomy = Arc::new(PlanCache::new());
    let esca = Esca::new(EscaConfig::default()).unwrap();
    let session = StreamingSession::new(esca, stack(), 1).with_plan_cache(Some(Arc::clone(&roomy)));
    let got = session.run_golden_batch(&frames).unwrap();
    for (w, g) in want.iter().zip(&got) {
        assert_eq!(w.features(), g.features());
    }
    assert_eq!((roomy.misses(), roomy.hits()), (2, 6));
    assert_eq!(roomy.evictions(), 0);
    assert!(
        roomy.hits() > tiny.hits(),
        "the budget must only cost reuse"
    );
}
