//! End-to-end integration: point cloud → voxelization → quantization →
//! ESCA accelerator, cross-checked bit-for-bit against the golden SSCN
//! model, on both synthetic dataset generators.

use esca::{Esca, EscaConfig};
use esca_pointcloud::{synthetic, voxelize};
use esca_sscn::quant::{quantize_tensor, submanifold_conv3d_q, QuantizedWeights};
use esca_sscn::weights::ConvWeights;
use esca_tensor::{Extent3, SparseTensor, TileShape};

fn shapenet_grid(seed: u64) -> SparseTensor<f32> {
    let cfg = synthetic::ShapeNetConfig {
        extent_voxels: 14.0,
        center: [24.0, 24.0, 24.0],
        ..Default::default()
    };
    voxelize::voxelize_occupancy(&synthetic::shapenet_like(seed, &cfg), Extent3::cube(48))
}

fn nyu_grid(seed: u64) -> SparseTensor<f32> {
    let cfg = synthetic::NyuConfig {
        extent_voxels: 16.0,
        center: [16.0, 16.0, 16.0],
        ..Default::default()
    };
    voxelize::voxelize_occupancy(&synthetic::nyu_like(seed, &cfg), Extent3::cube(48))
}

fn check_layer(input: &SparseTensor<f32>, in_ch: usize, out_ch: usize, seed: u64) {
    assert!(input.nnz() > 30, "workload too small to be meaningful");
    // Lift occupancy input to the layer's channel count by repetition.
    let mut lifted = SparseTensor::<f32>::new(input.extent(), in_ch);
    for (c, f) in input.iter() {
        let feats: Vec<f32> = (0..in_ch).map(|i| f[0] * (i as f32 + 1.0) * 0.2).collect();
        lifted.insert(c, &feats).unwrap();
    }
    let w = ConvWeights::seeded(3, in_ch, out_ch, seed);
    let qw = QuantizedWeights::auto(&w, 8, 12).unwrap();
    let qin = quantize_tensor(&lifted, qw.quant().act);
    let esca = Esca::new(EscaConfig::default()).unwrap();
    let run = esca.run_layer(&qin, &qw, true).unwrap();
    let golden = submanifold_conv3d_q(&qin, &qw, true).unwrap();
    assert!(run.output.same_content(&golden), "bit mismatch vs golden");
    assert!(run.output.same_active_set(&lifted));
    assert_eq!(run.stats.match_groups, lifted.nnz() as u64);
}

#[test]
fn shapenet_like_layers_are_bit_exact() {
    let g = shapenet_grid(5);
    check_layer(&g, 1, 16, 100);
    check_layer(&g, 16, 16, 101);
    check_layer(&g, 16, 32, 102);
}

#[test]
fn nyu_like_layers_are_bit_exact() {
    let g = nyu_grid(6);
    check_layer(&g, 1, 16, 200);
    check_layer(&g, 8, 24, 201);
}

#[test]
fn zero_removing_is_end_to_end_invariant() {
    // Same layer at several tile sizes: identical outputs, different
    // tiling statistics (Fig. 3's invariance at system level).
    let g = shapenet_grid(7);
    let w = ConvWeights::seeded(3, 1, 16, 300);
    let qw = QuantizedWeights::auto(&w, 8, 12).unwrap();
    let qin = quantize_tensor(&g, qw.quant().act);
    let mut outputs = Vec::new();
    let mut active_tiles = Vec::new();
    for side in [4u32, 8, 16] {
        let mut cfg = EscaConfig::default();
        cfg.tile = TileShape::cube(side);
        let run = Esca::new(cfg).unwrap().run_layer(&qin, &qw, false).unwrap();
        active_tiles.push(run.stats.active_tiles);
        outputs.push(run.output);
    }
    assert!(outputs.windows(2).all(|w| w[0].same_content(&w[1])));
    // Tiling statistics genuinely differ.
    assert!(active_tiles[0] > active_tiles[2]);
}

#[test]
fn accelerator_matches_float_reference_within_quantization_error() {
    let g = nyu_grid(8);
    let w = ConvWeights::seeded(3, 1, 8, 400);
    let qw = QuantizedWeights::auto(&w, 10, 12).unwrap();
    let qin = quantize_tensor(&g, qw.quant().act);
    let esca = Esca::new(EscaConfig::default()).unwrap();
    let run = esca.run_layer(&qin, &qw, false).unwrap();
    let deq = esca_sscn::quant::dequantize_tensor(&run.output, qw.quant().out);
    let float_ref = esca_sscn::conv::submanifold_conv3d(&g, &w).unwrap();
    let err = deq.max_abs_diff(&float_ref).unwrap();
    assert!(err < 0.05, "quantized datapath drifted too far: {err}");
}
