//! Property-style invariant tests for the tensor/quantization layer,
//! driven by seeded `StdRng` case generation (deterministic, no external
//! property-testing machinery):
//!
//! * voxelize → sparse-tensor round trips preserve nnz and coordinates;
//! * `same_content` is reflexive, symmetric, and insertion-order blind;
//! * quantize/dequantize respects the half-step error bound of
//!   `QuantParams` and `quantize_tensor`.

use esca_pointcloud::{voxelize, PointCloud};
use esca_sscn::quant::{dequantize_tensor, quantize_tensor};
use esca_tensor::{Coord3, Extent3, QuantParams, SparseTensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

const CASES: u64 = 32;

#[test]
fn voxelize_preserves_exactly_the_inbounds_unique_coords() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBEEF ^ case);
        let side = rng.gen_range(4u32..32);
        let n = rng.gen_range(1usize..200);
        // Points both inside and outside the grid; duplicates included.
        let points: Vec<[f32; 3]> = (0..n)
            .map(|_| {
                [
                    rng.gen_range(-4.0..side as f32 + 4.0),
                    rng.gen_range(-4.0..side as f32 + 4.0),
                    rng.gen_range(-4.0..side as f32 + 4.0),
                ]
            })
            .collect();
        let grid = Extent3::cube(side);
        let t = voxelize::voxelize_occupancy(&PointCloud::from_points(points.clone()), grid);

        let expected: BTreeSet<(i32, i32, i32)> = points
            .iter()
            .map(|p| {
                (
                    p[0].floor() as i32,
                    p[1].floor() as i32,
                    p[2].floor() as i32,
                )
            })
            .filter(|&(x, y, z)| grid.contains(Coord3::new(x, y, z)))
            .collect();
        assert_eq!(t.nnz(), expected.len(), "case {case}: nnz mismatch");
        let got: BTreeSet<(i32, i32, i32)> = t.coords().iter().map(|c| (c.x, c.y, c.z)).collect();
        assert_eq!(got, expected, "case {case}: active set mismatch");
        // Occupancy features are all 1.
        for (_, f) in t.iter() {
            assert_eq!(f, &[1.0]);
        }
    }
}

fn random_tensor(rng: &mut StdRng, side: u32, ch: usize) -> SparseTensor<f32> {
    let n = rng.gen_range(0usize..80);
    let mut t = SparseTensor::<f32>::new(Extent3::cube(side), ch);
    for _ in 0..n {
        let c = Coord3::new(
            rng.gen_range(0..side as i32),
            rng.gen_range(0..side as i32),
            rng.gen_range(0..side as i32),
        );
        let f: Vec<f32> = (0..ch).map(|_| rng.gen_range(-8.0..8.0)).collect();
        t.insert(c, &f).unwrap();
    }
    t.canonicalize();
    t
}

#[test]
fn same_content_is_reflexive_symmetric_and_order_blind() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xCAFE ^ case);
        let ch = rng.gen_range(1usize..5);
        let a = random_tensor(&mut rng, 16, ch);
        let b = random_tensor(&mut rng, 16, ch);
        assert!(a.same_content(&a), "case {case}: reflexivity");
        assert_eq!(
            a.same_content(&b),
            b.same_content(&a),
            "case {case}: symmetry"
        );

        // Rebuild `a` with its entries inserted in shuffled order: content
        // equality must not depend on insertion order.
        let mut entries: Vec<(Coord3, Vec<f32>)> = a.iter().map(|(c, f)| (c, f.to_vec())).collect();
        entries.shuffle(&mut rng);
        let mut shuffled = SparseTensor::<f32>::new(a.extent(), ch);
        for (c, f) in &entries {
            shuffled.insert(*c, f).unwrap();
        }
        shuffled.canonicalize();
        assert!(a.same_content(&shuffled), "case {case}: order blindness");
    }
}

#[test]
fn quantize_dequantize_respects_half_step_bound() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xF00D ^ case);
        let frac = rng.gen_range(2u8..12);
        let p = QuantParams::new(frac).unwrap();
        // Stay well inside the i16 range at this scale so saturation
        // never kicks in and the pure rounding bound applies.
        let limit = (i16::MAX as f32 * p.step() * 0.5).min(100.0);
        for _ in 0..64 {
            let v = rng.gen_range(-limit..limit);
            let err = (p.dequantize_i16(p.quantize_i16(v)) - v).abs();
            assert!(
                err <= p.step() / 2.0 + f32::EPSILON,
                "case {case}: frac {frac}, value {v}: error {err} > half step {}",
                p.step() / 2.0
            );
        }
    }
}

#[test]
fn tensor_quantize_roundtrip_bounds_every_element() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD1CE ^ case);
        let ch = rng.gen_range(1usize..4);
        let t = random_tensor(&mut rng, 12, ch);
        let p = QuantParams::new(8).unwrap();
        let q = quantize_tensor(&t, p);
        let back = dequantize_tensor(&q, p);
        // Same active set, and every feature within the rounding bound.
        assert_eq!(t.coords(), back.coords(), "case {case}: active set");
        match t.max_abs_diff(&back) {
            Ok(err) => assert!(
                err <= p.step() / 2.0 + f32::EPSILON,
                "case {case}: round-trip error {err}"
            ),
            Err(e) => panic!("case {case}: shape mismatch: {e}"),
        }
    }
}
