//! Equivalence of every parallel execution path with its sequential
//! reference, over seeded random workloads:
//!
//! * `submanifold_conv3d_par` ≡ `submanifold_conv3d` (float kernels);
//! * the sharded tile path ≡ the sequential accelerator — same output
//!   *and* the same [`CycleStats`] and trace, bit for bit;
//! * [`StreamingSession`] batches ≡ the per-frame sequential stream, for
//!   worker counts 1, 2 and 8, with and without layer sharding;
//! * the flat matching-reuse engine ([`esca_sscn::engine`]) ≡ the direct
//!   per-layer path — outputs bit-identical on a full SS U-Net pass, and
//!   [`CycleStats`]/[`esca::PipelineTrace`] byte-identical at any rulebook
//!   cache setting (the golden path never touches the cycle model).

use esca::streaming::StreamingSession;
use esca::{CycleStats, Esca, EscaConfig};
use esca_sscn::conv::submanifold_conv3d;
use esca_sscn::engine::{FlatEngine, RulebookCache};
use esca_sscn::gemm::GemmBackendKind;
use esca_sscn::par::submanifold_conv3d_par;
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
use esca_sscn::unet::{SsUNet, UNetConfig};
use esca_sscn::weights::ConvWeights;
use esca_tensor::{Coord3, Extent3, QuantParams, SparseTensor, Q16};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn random_sparse(seed: u64, side: u32, ch: usize, n: usize) -> SparseTensor<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = SparseTensor::<f32>::new(Extent3::cube(side), ch);
    for _ in 0..n {
        let c = Coord3::new(
            rng.gen_range(0..side as i32),
            rng.gen_range(0..side as i32),
            rng.gen_range(0..side as i32),
        );
        let f: Vec<f32> = (0..ch).map(|_| rng.gen_range(-2.0..2.0)).collect();
        t.insert(c, &f).unwrap();
    }
    t.canonicalize();
    t
}

fn random_qinput(seed: u64, side: u32, ch: usize, n: usize) -> SparseTensor<Q16> {
    quantize_tensor(
        &random_sparse(seed, side, ch, n),
        QuantParams::new(8).unwrap(),
    )
}

#[test]
fn par_conv_matches_sequential_across_shapes() {
    // (extent, in_ch, out_ch, nnz) across small/odd/wide shapes.
    let cases = [
        (8u32, 1usize, 1usize, 5usize),
        (12, 2, 8, 40),
        (16, 3, 5, 120),
        (20, 8, 16, 300),
        (24, 16, 4, 64),
    ];
    for (i, &(side, ic, oc, n)) in cases.iter().enumerate() {
        let input = random_sparse(1000 + i as u64, side, ic, n);
        let w = ConvWeights::seeded(3, ic, oc, 2000 + i as u64);
        let seq = submanifold_conv3d(&input, &w).unwrap();
        let par = submanifold_conv3d_par(&input, &w).unwrap();
        assert!(
            par.same_content(&seq),
            "par conv diverged on case {i} ({side}³, {ic}->{oc}, nnz {n})"
        );
    }
}

#[test]
fn sharded_layer_matches_sequential_bit_for_bit() {
    let esca = Esca::new(EscaConfig::default()).unwrap();
    for (i, &(side, ic, oc, n)) in [
        (12u32, 2usize, 8usize, 60usize),
        (16, 3, 4, 150),
        (24, 1, 16, 400),
    ]
    .iter()
    .enumerate()
    {
        let qin = random_qinput(3000 + i as u64, side, ic, n);
        let w = ConvWeights::seeded(3, ic, oc, 4000 + i as u64);
        let qw = QuantizedWeights::auto(&w, 8, 10).unwrap();
        let seq = esca.run_layer(&qin, &qw, true).unwrap();
        for workers in [2usize, 3, 8] {
            let par = esca.run_layer_sharded(&qin, &qw, true, workers).unwrap();
            assert!(
                par.output.same_content(&seq.output),
                "sharded output diverged (case {i}, {workers} workers)"
            );
            assert_eq!(
                par.stats, seq.stats,
                "sharded cycle stats diverged (case {i}, {workers} workers)"
            );
        }
    }
}

#[test]
fn sharded_layer_preserves_trace_and_weight_residency() {
    let mut cfg = EscaConfig::default();
    cfg.record_trace = true;
    let esca = Esca::new(cfg).unwrap();
    let qin = random_qinput(42, 16, 2, 120);
    let qw = QuantizedWeights::auto(&ConvWeights::seeded(3, 2, 8, 43), 8, 10).unwrap();
    // Traces concatenate in tile order: identical to sequential emission.
    let seq = esca.run_layer(&qin, &qw, false).unwrap();
    let par = esca.run_layer_sharded(&qin, &qw, false, 4).unwrap();
    assert_eq!(par.trace, seq.trace);
    // Weights-resident accounting (the streaming steady state) matches too.
    let seq_res = esca.run_layer_opts(&qin, &qw, false, false).unwrap();
    let par_res = esca
        .run_layer_sharded_opts(&qin, &qw, false, false, 4)
        .unwrap();
    assert_eq!(par_res.stats, seq_res.stats);
    assert!(seq_res.stats.total_cycles() < seq.stats.total_cycles());
}

#[test]
fn sharded_layer_single_worker_delegates() {
    let esca = Esca::new(EscaConfig::default()).unwrap();
    let qin = random_qinput(7, 12, 2, 50);
    let qw = QuantizedWeights::auto(&ConvWeights::seeded(3, 2, 4, 8), 8, 10).unwrap();
    let a = esca.run_layer_sharded(&qin, &qw, true, 1).unwrap();
    let b = esca.run_layer(&qin, &qw, true).unwrap();
    assert!(a.output.same_content(&b.output));
    assert_eq!(a.stats, b.stats);
}

fn stream_stack() -> Vec<(QuantizedWeights, bool)> {
    vec![
        (
            QuantizedWeights::auto(&ConvWeights::seeded(3, 2, 8, 61), 8, 10).unwrap(),
            true,
        ),
        (
            QuantizedWeights::auto(&ConvWeights::seeded(3, 8, 8, 62), 8, 10).unwrap(),
            true,
        ),
        (
            QuantizedWeights::auto(&ConvWeights::seeded(3, 8, 4, 63), 8, 10).unwrap(),
            false,
        ),
    ]
}

#[test]
fn streaming_session_matches_sequential_stream_for_all_worker_counts() {
    let frames: Vec<_> = (0..6).map(|i| random_qinput(500 + i, 14, 2, 70)).collect();
    let stack = stream_stack();
    let esca = Esca::new(EscaConfig::default()).unwrap();
    let seq: Vec<CycleStats> = esca.run_network_stream(&frames, &stack).unwrap();
    let seq_outputs: Vec<_> = frames
        .iter()
        .map(|f| esca.run_network(f, &stack).unwrap().output)
        .collect();
    for workers in [1usize, 2, 8] {
        let session = StreamingSession::new(esca.clone(), stack.clone(), workers);
        let report = session.run_batch(&frames).unwrap();
        assert_eq!(
            report.per_frame, seq,
            "per-frame stats diverged at {workers} workers"
        );
        for (i, (got, want)) in report.outputs.iter().zip(&seq_outputs).enumerate() {
            assert!(
                got.same_content(want),
                "frame {i} output diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn flat_engine_unet_forward_is_bit_identical() {
    // The paper-scale SS U-Net structure (3 levels, 11 Sub-Conv layers)
    // on a moderate blob: the flat gather→GEMM→scatter path through the
    // rulebook cache must reproduce the direct path bit for bit, with one
    // matching pass per resolution level.
    let net = SsUNet::new(UNetConfig::default()).unwrap();
    let input = {
        let mut t = random_sparse(8800, 32, 1, 900);
        // Occupancy-style strictly positive features.
        let feats: Vec<f32> = t.features().iter().map(|v| v.abs() + 0.1).collect();
        t = SparseTensor::from_template(&t, 1, feats).unwrap();
        t
    };
    let direct = net.forward(&input).unwrap();
    let mut engine = FlatEngine::with_backend(GemmBackendKind::ScalarRef);
    let flat = net.forward_engine(&input, &mut engine).unwrap();
    assert_eq!(flat.coords(), direct.coords(), "storage order differs");
    assert_eq!(flat.features(), direct.features(), "values differ");
    // 11 Sub-Conv layers over 3 geometries: 3 rulebook builds, 8 reuses.
    // The 2 strided and 2 transpose site maps also live in the geometry
    // cache now, each built once per pass: 3 + 4 = 7 misses total.
    assert_eq!(engine.cache().misses(), 7);
    assert_eq!(engine.cache().hits(), 8);

    // The blocked tier over the same pass: epsilon-bounded against the
    // direct path, and byte-identical when repeated (determinism holds
    // in every tier, across engine instances).
    let mut fast = FlatEngine::with_backend(GemmBackendKind::Blocked);
    let blocked = net.forward_engine(&input, &mut fast).unwrap();
    assert_eq!(blocked.coords(), direct.coords());
    for (x, y) in blocked.features().iter().zip(direct.features()) {
        assert!(
            (x - y).abs() <= 1e-4 * y.abs().max(1.0),
            "blocked tier outside epsilon: {x} vs {y}"
        );
    }
    let mut fast2 = FlatEngine::with_backend(GemmBackendKind::Blocked);
    let blocked2 = net.forward_engine(&input, &mut fast2).unwrap();
    assert_eq!(blocked.features(), blocked2.features());
}

#[test]
fn golden_batch_is_bit_identical_and_stats_are_cache_invariant() {
    let frames: Vec<_> = (0..4).map(|i| random_qinput(900 + i, 14, 2, 80)).collect();
    let stack = stream_stack();
    let esca = Esca::new(EscaConfig::default()).unwrap();

    // Reference: the simulated batch, before any golden-path run.
    let session = StreamingSession::new(esca.clone(), stack.clone(), 2);
    let before = session.run_batch(&frames).unwrap();

    // Golden outputs match the simulated outputs bitwise — with a fresh
    // cache and with a pre-warmed shared one. Quantized accumulation is
    // integer-exact, so this holds under *every* GEMM backend.
    for kind in GemmBackendKind::ALL {
        let tier = StreamingSession::new(esca.clone(), stack.clone(), 2).with_gemm_backend(kind);
        let outs = tier.run_golden_batch(&frames).unwrap();
        for (g, o) in outs.iter().zip(&before.outputs) {
            assert_eq!(g.coords(), o.coords());
            assert_eq!(
                g.features(),
                o.features(),
                "golden batch diverged under the {kind} backend"
            );
        }
    }
    let fresh = session.run_golden_batch(&frames).unwrap();
    let warmed_cache = Arc::new(RulebookCache::new());
    for f in &frames {
        warmed_cache.get_or_build(f, 3);
    }
    let session2 = StreamingSession::new(esca.clone(), stack.clone(), 1)
        .with_rulebook_cache(Arc::clone(&warmed_cache));
    let warmed = session2.run_golden_batch(&frames).unwrap();
    for ((g, w), o) in fresh.iter().zip(&warmed).zip(&before.outputs) {
        assert_eq!(g.coords(), o.coords());
        assert_eq!(g.features(), o.features());
        assert_eq!(w.features(), o.features(), "cache warmth changed values");
    }
    assert_eq!(warmed_cache.misses(), 4, "all warmed lookups must hit");

    // Simulated per-frame stats are byte-identical after golden-path use:
    // the cache can never perturb the cycle model.
    let after = session.run_batch(&frames).unwrap();
    assert_eq!(before.per_frame, after.per_frame);
}

#[test]
fn pipeline_trace_is_invariant_under_golden_engine_use() {
    let mut cfg = EscaConfig::default();
    cfg.record_trace = true;
    let esca = Esca::new(cfg).unwrap();
    let qin = random_qinput(77, 16, 2, 120);
    let qw = QuantizedWeights::auto(&ConvWeights::seeded(3, 2, 8, 78), 8, 10).unwrap();
    let before = esca.run_layer(&qin, &qw, true).unwrap();
    let cache = Arc::new(RulebookCache::new());
    let golden = esca
        .run_network_golden(&qin, &[(qw.clone(), true)], &cache)
        .unwrap();
    assert!(golden.same_content(&before.output));
    let after = esca.run_layer(&qin, &qw, true).unwrap();
    assert_eq!(after.trace, before.trace, "trace must not depend on cache");
    assert_eq!(after.stats, before.stats);
}

#[test]
fn streaming_session_with_layer_shards_is_still_exact() {
    let frames: Vec<_> = (0..3).map(|i| random_qinput(700 + i, 16, 2, 130)).collect();
    let stack = stream_stack();
    let esca = Esca::new(EscaConfig::default()).unwrap();
    let seq = esca.run_network_stream(&frames, &stack).unwrap();
    let session = StreamingSession::new(esca, stack, 2).with_layer_shards(4);
    let report = session.run_batch(&frames).unwrap();
    assert_eq!(report.per_frame, seq);
}
