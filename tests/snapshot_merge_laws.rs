//! Algebraic laws of telemetry merging, checked at the serialized-byte
//! level: folding per-worker registries into a campaign total must be
//! commutative and associative, because the streaming engines fold
//! worker results in completion order while the determinism contract
//! promises a byte-identical cycle snapshot. Exercised over randomized
//! registries (seeded `StdRng`, exhaustively replayable) that include
//! the real metric families — `esca_plan_cache_*`, the fault counters,
//! per-frame cycle histograms — alongside hostile generic names.

use esca_telemetry::{Registry, TelemetrySnapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

/// A randomized registry drawing from the production family names so
/// the law is checked on the series the engine actually emits.
fn random_registry(rng: &mut StdRng) -> Registry {
    let mut reg = Registry::new();
    let classes = [
        "bram_bit_flip",
        "fifo_bit_flip",
        "frame_corrupt",
        "worker_panic",
        "stall",
        "rulebook_corrupt",
    ];
    let outcomes = ["ok", "retried", "failed", "dropped"];
    for _ in 0..rng.gen_range(0..6) {
        let class = classes[rng.gen_range(0..classes.len())];
        reg.counter_add(
            "esca_faults_injected_total",
            &[("class", class)],
            rng.gen_range(0..50),
        );
        if rng.gen_bool(0.5) {
            reg.counter_add(
                "esca_faults_detected_total",
                &[("class", class)],
                rng.gen_range(0..50),
            );
        }
    }
    for _ in 0..rng.gen_range(0..4) {
        let outcome = outcomes[rng.gen_range(0..outcomes.len())];
        reg.counter_add(
            "esca_frames_outcome_total",
            &[("outcome", outcome)],
            rng.gen_range(0..20),
        );
    }
    if rng.gen_bool(0.7) {
        reg.counter_add("esca_plan_cache_hits_total", &[], rng.gen_range(0..100));
        reg.counter_add("esca_plan_cache_misses_total", &[], rng.gen_range(0..100));
        reg.counter_add("esca_plan_cache_evictions_total", &[], rng.gen_range(0..10));
        reg.gauge_max(
            "esca_plan_cache_resident_bytes",
            &[],
            rng.gen_range(0..1 << 20),
        );
        reg.gauge_max("esca_plan_cache_entries", &[], rng.gen_range(0..32));
    }
    for _ in 0..rng.gen_range(0..20) {
        reg.observe("esca_frame_cycles", &[], rng.gen_range(0..1 << 24));
    }
    if rng.gen_bool(0.4) {
        // A hostile family name and label value: merging must treat
        // them as opaque keys, never parse or normalize them.
        reg.observe(
            "esca_weird_latency",
            &[("path", "C:\\data\n\"q\"")],
            rng.gen_range(0..1 << 10),
        );
    }
    if rng.gen_bool(0.5) {
        reg.gauge_max("esca_fifo_peak", &[("fifo", "0")], rng.gen_range(0..4096));
    }
    reg
}

/// Serializes the pair (cycle = the merged registry, host = empty) so
/// equality is judged on exactly the bytes CI artifacts carry.
fn bytes(reg: &Registry) -> String {
    let empty = Registry::new();
    let snap = TelemetrySnapshot::from_registries(reg, &empty);
    let json = serde_json::to_string(&snap).unwrap();
    // The Prometheus rendering must agree too (same sorted series).
    format!("{json}\u{0}{}", snap.to_prometheus_text())
}

fn merged(parts: &[&Registry]) -> Registry {
    let mut total = Registry::new();
    for p in parts {
        total.merge(p);
    }
    total
}

#[test]
fn registry_merge_is_commutative_at_the_byte_level() {
    let mut rng = StdRng::seed_from_u64(0x5EED_C0DE);
    for case in 0..CASES {
        let a = random_registry(&mut rng);
        let b = random_registry(&mut rng);
        assert_eq!(
            bytes(&merged(&[&a, &b])),
            bytes(&merged(&[&b, &a])),
            "case {case}: a+b != b+a"
        );
    }
}

#[test]
fn registry_merge_is_associative_at_the_byte_level() {
    let mut rng = StdRng::seed_from_u64(0xA550C);
    for case in 0..CASES {
        let a = random_registry(&mut rng);
        let b = random_registry(&mut rng);
        let c = random_registry(&mut rng);
        let left = {
            let ab = merged(&[&a, &b]);
            merged(&[&ab, &c])
        };
        let right = {
            let bc = merged(&[&b, &c]);
            merged(&[&a, &bc])
        };
        assert_eq!(
            bytes(&left),
            bytes(&right),
            "case {case}: (a+b)+c != a+(b+c)"
        );
        // Any completion-order permutation of three workers agrees.
        let perm = merged(&[&c, &a, &b]);
        assert_eq!(
            bytes(&left),
            bytes(&perm),
            "case {case}: permutation diverged"
        );
    }
}

#[test]
fn merge_identity_and_self_fold_are_stable() {
    let mut rng = StdRng::seed_from_u64(0x1D);
    for case in 0..CASES {
        let a = random_registry(&mut rng);
        // Empty registry is the identity element.
        assert_eq!(
            bytes(&merged(&[&a, &Registry::new()])),
            bytes(&a),
            "case {case}: a+0 != a"
        );
        // Counters sum and histograms add on self-merge; gauges (high-
        // water marks) are idempotent. Checked via the fold semantics:
        // merging a into itself twice equals merging two clones.
        let twice = merged(&[&a, &a]);
        let clone_fold = {
            let b = merged(&[&a]);
            merged(&[&a, &b])
        };
        assert_eq!(bytes(&twice), bytes(&clone_fold), "case {case}");
    }
}
