//! Integration test of the full system pipeline: ESCA-offloaded SS U-Net
//! with host layers and labeled-scene metrics — the complete deployment
//! path from sensor-like data to evaluated predictions.

use esca::system::{run_unet, HostModel};
use esca::{Esca, EscaConfig};
use esca_pointcloud::labeled::{nyu_like_labeled, segmentation_metrics, voxelize_labels};
use esca_pointcloud::synthetic::NyuConfig;
use esca_pointcloud::voxelize;
use esca_sscn::unet::{SsUNet, UNetConfig};
use esca_tensor::{Extent3, SparseTensor};

fn scene_cfg() -> NyuConfig {
    NyuConfig {
        extent_voxels: 16.0,
        center: [16.0, 16.0, 16.0],
        furniture: 2,
        ..Default::default()
    }
}

fn net() -> SsUNet {
    SsUNet::new(UNetConfig {
        input_channels: 1,
        levels: 2,
        base_channels: 8,
        blocks_per_level: 1,
        classes: 3,
        kernel: 3,
        seed: 9,
    })
    .unwrap()
}

#[test]
fn pipeline_predictions_cover_scene_and_score() {
    let labeled = nyu_like_labeled(31, &scene_cfg());
    let grid = Extent3::cube(48);
    let input = voxelize::voxelize_occupancy(&labeled.cloud, grid);
    let truth = voxelize_labels(&labeled, grid);
    assert!(input.nnz() > 100);

    let esca = Esca::new(EscaConfig::default()).unwrap();
    let run = run_unet(&net(), &esca, &HostModel::default(), &input, 8).unwrap();
    assert!(run.logits.same_active_set(&input));

    // Argmax predictions over the active set, scored against ground truth.
    let mut predicted = SparseTensor::<f32>::new(grid, 1);
    for (c, f) in run.logits.iter() {
        let best = f
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i as f32)
            .expect("classes > 0");
        predicted.insert(c, &[best]).unwrap();
    }
    let m = segmentation_metrics(&predicted, &truth, 3);
    // Untrained network: just require well-formed metrics.
    assert!((0.0..=1.0).contains(&m.accuracy));
    assert!((0.0..=1.0).contains(&m.mean_iou));
    assert_eq!(m.iou.len(), 3);
}

#[test]
fn pipeline_matches_pure_float_within_quantization() {
    let labeled = nyu_like_labeled(32, &scene_cfg());
    let input = voxelize::voxelize_occupancy(&labeled.cloud, Extent3::cube(48));
    let net = net();
    let esca = Esca::new(EscaConfig::default()).unwrap();
    let run = run_unet(&net, &esca, &HostModel::default(), &input, 12).unwrap();
    let float_logits = net.forward(&input).unwrap();
    let err = run.logits.max_abs_diff(&float_logits).unwrap();
    assert!(err < 0.05, "pipeline drift {err}");
}

#[test]
fn time_breakdown_is_positive_and_consistent() {
    let labeled = nyu_like_labeled(33, &scene_cfg());
    let input = voxelize::voxelize_occupancy(&labeled.cloud, Extent3::cube(48));
    let esca = Esca::new(EscaConfig::default()).unwrap();
    let run = run_unet(&net(), &esca, &HostModel::default(), &input, 8).unwrap();
    assert!(run.accel_s > 0.0 && run.host_compute_s > 0.0);
    assert!(run.end_to_end_s() >= run.accel_s);
    assert!(run.accel.matches > 0);
}
