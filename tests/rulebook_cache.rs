//! Property-style tests of the rulebook and its identity-keyed cache over
//! seeded random geometries:
//!
//! * a rulebook's total pair count equals the direct neighbour count the
//!   effective-ops accounting computes ([`esca_sscn::ops::count_matches`]);
//! * a cache hit returns the *same* shared rulebook (`Arc` identity) and
//!   one structurally equal to a fresh [`Rulebook::build`];
//! * the fingerprint key separates geometries and is storage-order
//!   sensitive (rule indices refer to storage positions).

use esca_sscn::engine::RulebookCache;
use esca_sscn::ops::count_matches;
use esca_sscn::rulebook::Rulebook;
use esca_tensor::{Coord3, Extent3, SparseTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn random_geometry(seed: u64, side: u32, n: usize) -> SparseTensor<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = SparseTensor::<f32>::new(Extent3::cube(side), 1);
    for _ in 0..n {
        let c = Coord3::new(
            rng.gen_range(0..side as i32),
            rng.gen_range(0..side as i32),
            rng.gen_range(0..side as i32),
        );
        t.insert(c, &[1.0]).unwrap();
    }
    t.canonicalize();
    t
}

#[test]
fn pair_count_equals_direct_neighbour_count() {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for case in 0..24 {
        let side = rng.gen_range(4..24u32);
        let n = rng.gen_range(1..300usize);
        let k = [1u32, 3, 5][case % 3];
        let input = random_geometry(rng.gen(), side, n);
        let rb = Rulebook::build(&input, k);
        assert_eq!(
            rb.total_matches(),
            count_matches(&input, k),
            "case {case}: k {k}, side {side}, nnz {}",
            input.nnz()
        );
        assert_eq!(rb.sites(), input.nnz());
        assert!(rb.centre_tap_is_identity());
    }
}

#[test]
fn cache_hit_returns_shared_and_structurally_equal_rulebook() {
    let cache = RulebookCache::new();
    let mut rng = StdRng::seed_from_u64(0xcafe);
    for case in 0..12 {
        let input = random_geometry(rng.gen(), rng.gen_range(6..20u32), rng.gen_range(1..200));
        let first = cache.get_or_build(&input, 3);
        let again = cache.get_or_build(&input, 3);
        assert!(
            Arc::ptr_eq(&first, &again),
            "case {case}: hit must return the shared rulebook"
        );
        let fresh = Rulebook::build(&input, 3);
        assert_eq!(*first, fresh, "case {case}: cached != fresh build");
    }
    assert_eq!(cache.misses(), 12);
    assert_eq!(cache.hits(), 12);
    assert_eq!(cache.len(), 12);
    assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    cache.clear();
    assert!(cache.is_empty());
    assert_eq!(cache.hits() + cache.misses(), 0);
}

#[test]
fn cache_key_separates_kernels_geometries_and_storage_orders() {
    let cache = RulebookCache::new();
    let a = random_geometry(1, 12, 80);
    let b = random_geometry(2, 12, 80);
    let rb_a3 = cache.get_or_build(&a, 3);
    let rb_a5 = cache.get_or_build(&a, 5);
    let rb_b3 = cache.get_or_build(&b, 3);
    assert_eq!(cache.misses(), 3, "distinct keys must all build");
    assert!(!Arc::ptr_eq(&rb_a3, &rb_a5));
    assert!(!Arc::ptr_eq(&rb_a3, &rb_b3));
    // Same active set, different storage order: rule indices refer to
    // storage positions, so this must be a distinct cache entry.
    let mut reversed = SparseTensor::<f32>::new(a.extent(), 1);
    for (c, f) in a.iter().collect::<Vec<_>>().into_iter().rev() {
        reversed.insert(c, f).unwrap();
    }
    assert!(reversed.same_active_set(&a));
    let rb_rev = cache.get_or_build(&reversed, 3);
    assert_eq!(cache.misses(), 4, "reordered geometry must rebuild");
    assert_eq!(rb_rev.total_matches(), rb_a3.total_matches());
}
