//! Determinism of the streaming engine: the same 16-frame batch, run
//! under different worker counts (and repeatedly under the same count),
//! must produce byte-identical serialized per-frame statistics and
//! identical modeled deployment numbers. Simulated time is a pure
//! function of the workload — host scheduling must never leak into it.

use esca::streaming::StreamingSession;
use esca::{Esca, EscaConfig};
use esca_sscn::gemm::GemmBackendKind;
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
use esca_sscn::weights::ConvWeights;
use esca_tensor::{Coord3, Extent3, QuantParams, SparseTensor, Q16};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn frame(seed: u64) -> SparseTensor<Q16> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = SparseTensor::<f32>::new(Extent3::cube(14), 2);
    let n = rng.gen_range(30..90);
    for _ in 0..n {
        let c = Coord3::new(
            rng.gen_range(0..14),
            rng.gen_range(0..14),
            rng.gen_range(0..14),
        );
        let f: Vec<f32> = (0..2).map(|_| rng.gen_range(-2.0..2.0)).collect();
        t.insert(c, &f).unwrap();
    }
    t.canonicalize();
    quantize_tensor(&t, QuantParams::new(8).unwrap())
}

fn stack() -> Vec<(QuantizedWeights, bool)> {
    vec![
        (
            QuantizedWeights::auto(&ConvWeights::seeded(3, 2, 8, 91), 8, 10).unwrap(),
            true,
        ),
        (
            QuantizedWeights::auto(&ConvWeights::seeded(3, 8, 4, 92), 8, 10).unwrap(),
            false,
        ),
    ]
}

#[test]
fn sixteen_frame_batch_serializes_identically_across_worker_counts() {
    let frames: Vec<_> = (0..16).map(|i| frame(0x51AB + i)).collect();
    let mut serialized: Vec<String> = Vec::new();
    let mut modeled: Vec<(u64, String)> = Vec::new();
    // Worker counts 1, 2, 8 — plus 8 twice to catch run-to-run races.
    for workers in [1usize, 2, 8, 8] {
        let esca = Esca::new(EscaConfig::default()).unwrap();
        let session = StreamingSession::new(esca, stack(), workers);
        let report = session.run_batch(&frames).unwrap();
        serialized.push(serde_json::to_string(&report.per_frame).unwrap());
        let m = report.modeled(8);
        modeled.push((m.makespan_cycles, format!("{:.6}", m.frames_per_s)));
        // The steady-state probe is deterministic too.
        serialized
            .last_mut()
            .unwrap()
            .push_str(&serde_json::to_string(&report.steady_frame0).unwrap());
    }
    for (i, s) in serialized.iter().enumerate().skip(1) {
        assert_eq!(
            s, &serialized[0],
            "serialized stats of run {i} differ from run 0"
        );
    }
    for (i, m) in modeled.iter().enumerate().skip(1) {
        assert_eq!(m, &modeled[0], "modeled deployment of run {i} differs");
    }
}

#[test]
fn golden_batch_is_byte_identical_across_splits_for_every_gemm_backend() {
    // The GEMM backend is a throughput knob, never a semantics knob: for
    // each backend the golden-path batch output must be byte-identical
    // across runs and across (workers, shards) splits. On the quantized
    // path the two backends are additionally bit-exact against *each
    // other* (integer accumulation is associative), which this pins too.
    let frames: Vec<_> = (0..8).map(|i| frame(0x6E44 + i)).collect();
    let mut per_kind: Vec<String> = Vec::new();
    for kind in GemmBackendKind::ALL {
        let mut fingerprints: Vec<String> = Vec::new();
        // (2, 1) twice to catch run-to-run races inside one split.
        for (workers, shards) in [(1usize, 1usize), (2, 1), (2, 1), (4, 2)] {
            let esca = Esca::new(EscaConfig::default()).unwrap();
            let session = StreamingSession::new(esca, stack(), workers)
                .with_layer_shards(shards)
                .with_gemm_backend(kind);
            let outputs = session.run_golden_batch(&frames).unwrap();
            let mut fp = String::new();
            for t in &outputs {
                for c in t.coords() {
                    fp.push_str(&format!("{},{},{};", c.x, c.y, c.z));
                }
                for f in t.features() {
                    fp.push_str(&format!("{:04x}", f.0 as u16));
                }
                fp.push('\n');
            }
            fingerprints.push(fp);
        }
        for (i, fp) in fingerprints.iter().enumerate().skip(1) {
            assert_eq!(
                fp, &fingerprints[0],
                "{kind}: golden batch of split {i} diverged from the (1,1) baseline"
            );
        }
        per_kind.push(fingerprints.swap_remove(0));
    }
    assert_eq!(
        per_kind[0], per_kind[1],
        "quantized golden outputs must be bit-exact across backends"
    );
}

#[test]
fn cycle_metrics_snapshot_is_byte_identical_across_workers_and_shards() {
    // The determinism contract (DESIGN.md): the cycle-domain half of the
    // telemetry snapshot is a pure function of the workload. Vary both the
    // frame-level worker pool and the intra-layer shard count; the
    // serialized cycle snapshot must not change by a single byte.
    let frames: Vec<_> = (0..16).map(|i| frame(0xC0DE + i)).collect();
    let mut snapshots: Vec<String> = Vec::new();
    for (workers, shards) in [(1usize, 1usize), (2, 1), (4, 1), (2, 2)] {
        let esca = Esca::new(EscaConfig::default()).unwrap();
        let session = StreamingSession::new(esca, stack(), workers).with_layer_shards(shards);
        let report = session.run_batch(&frames).unwrap();
        snapshots.push(serde_json::to_string(&report.telemetry.cycle).unwrap());
    }
    assert!(
        snapshots[0].contains("esca_frame_cycles"),
        "cycle snapshot is missing the per-frame cycle histogram"
    );
    for (i, s) in snapshots.iter().enumerate().skip(1) {
        assert_eq!(
            s, &snapshots[0],
            "cycle snapshot of run {i} differs from the single-worker baseline"
        );
    }
}
