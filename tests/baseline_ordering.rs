//! Integration test of the evaluation claim structure: on realistic
//! Sub-Conv workloads the platform ordering of the paper's Fig. 10 holds —
//! ESCA fastest, GPU second, CPU slowest — and all three platforms compute
//! the same function.

use esca::{Esca, EscaConfig};
use esca_baselines::{CpuModel, GpuModel};
use esca_pointcloud::{synthetic, voxelize};
use esca_sscn::quant::{dequantize_tensor, quantize_tensor, QuantizedWeights};
use esca_sscn::weights::ConvWeights;
use esca_tensor::{Extent3, SparseTensor};

fn workload() -> (SparseTensor<f32>, ConvWeights) {
    let cfg = synthetic::ShapeNetConfig {
        extent_voxels: 20.0,
        center: [24.0, 24.0, 24.0],
        ..Default::default()
    };
    let grid = voxelize::voxelize_occupancy(&synthetic::shapenet_like(9, &cfg), Extent3::cube(48));
    // Lift to 16 channels, the array-filling case.
    let mut input = SparseTensor::<f32>::new(grid.extent(), 16);
    for (c, f) in grid.iter() {
        let feats: Vec<f32> = (0..16).map(|i| f[0] * 0.1 * (i as f32 + 1.0)).collect();
        input.insert(c, &feats).unwrap();
    }
    (input, ConvWeights::seeded(3, 16, 16, 33))
}

#[test]
fn platform_ordering_matches_fig10() {
    let (input, weights) = workload();
    let cpu = CpuModel::default().run_layer(&input, &weights).unwrap();
    let gpu = GpuModel::default().run_layer(&input, &weights).unwrap();

    let qw = QuantizedWeights::auto(&weights, 8, 12).unwrap();
    let qin = quantize_tensor(&input, qw.quant().act);
    let esca_run = Esca::new(EscaConfig::default())
        .unwrap()
        .run_layer(&qin, &qw, false)
        .unwrap();
    let esca_s = esca_run.stats.time_s(270.0);

    assert!(
        esca_s < gpu.time_s && gpu.time_s < cpu.time_s,
        "ordering violated: esca {esca_s}, gpu {}, cpu {}",
        gpu.time_s,
        cpu.time_s
    );
}

#[test]
fn all_platforms_compute_the_same_function() {
    let (input, weights) = workload();
    let cpu = CpuModel::default().run_layer(&input, &weights).unwrap();
    let gpu = GpuModel::default().run_layer(&input, &weights).unwrap();
    assert!(cpu.output.same_content(&gpu.output));

    let qw = QuantizedWeights::auto(&weights, 10, 12).unwrap();
    let qin = quantize_tensor(&input, qw.quant().act);
    let esca_run = Esca::new(EscaConfig::default())
        .unwrap()
        .run_layer(&qin, &qw, false)
        .unwrap();
    let deq = dequantize_tensor(&esca_run.output, qw.quant().out);
    let err = deq.max_abs_diff(&cpu.output).unwrap();
    assert!(err < 0.1, "quantized accelerator drifted from float: {err}");
}

#[test]
fn effective_ops_agree_across_platforms() {
    let (input, weights) = workload();
    let cpu = CpuModel::default().run_layer(&input, &weights).unwrap();
    let gpu = GpuModel::default().run_layer(&input, &weights).unwrap();
    assert_eq!(cpu.effective_ops, gpu.effective_ops);

    let qw = QuantizedWeights::auto(&weights, 8, 12).unwrap();
    let qin = quantize_tensor(&input, qw.quant().act);
    let esca_run = Esca::new(EscaConfig::default())
        .unwrap()
        .run_layer(&qin, &qw, false)
        .unwrap();
    assert_eq!(esca_run.stats.effective_ops(), cpu.effective_ops);
}
