# Convenience targets for ESCA-rs. Everything is plain cargo underneath.

.PHONY: all build test verify analyze bench tables examples doc clippy fmt clean

all: build test

build:
	cargo build --workspace --release

test:
	cargo test --workspace

# The CI gate: offline, lockfile-pinned build + tests + lint-clean, plus
# a smoke run of the matching-reuse engine bench (asserts bit-identity of
# the flat path and refreshes BENCH_sscn.json) and a seeded smoke chaos
# campaign on the resilient streaming path (replayable summary lands in
# chaos.json). The backend-equivalence suites re-run once per GEMM
# backend with ESCA_GEMM_BACKEND pinned, so every env-driven default
# path is exercised under both tiers, and the streaming determinism
# suite re-runs with the whole-network plan cache enabled
# (ESCA_PLAN_CACHE=1) under both backends — plan replay must keep
# outputs and cycle telemetry byte-identical. The observability plane is
# gated end to end: the live-scrape/flight/span suites run under both
# backends, and a smoke stream starts `--serve` on loopback, self-scrapes
# /metrics + /healthz with the std-only client, exports the nested span
# trace and dumps the flight ring from a 4-frame chaos campaign
# (flight.json, uploaded as a CI artifact, must be non-empty). The
# ingest admission plane is gated too: the slo_front bench sweeps a
# seeded overload campaign into an availability/latency Pareto front
# (SLO_front.json, uploaded as a CI artifact), and a 2-tenant overload
# smoke (queue depth 2, 8-frame burst) replays it through the bounded
# ingest queue with the selected operating point published on /healthz.
# Matches .github/workflows/ci.yml.
verify:
	cargo build --workspace --release --locked --offline
	cargo test --workspace -q --locked --offline
	ESCA_GEMM_BACKEND=scalar cargo test -q --locked --offline -p esca-sscn --test gemm_backends -p esca --test chaos_streaming -p esca-suite --test parallel_equivalence --test streaming_determinism --test observability --test snapshot_merge_laws
	ESCA_GEMM_BACKEND=blocked cargo test -q --locked --offline -p esca-sscn --test gemm_backends -p esca --test chaos_streaming -p esca-suite --test parallel_equivalence --test streaming_determinism --test observability --test snapshot_merge_laws
	ESCA_PLAN_CACHE=1 ESCA_GEMM_BACKEND=scalar cargo test -q --locked --offline -p esca-suite --test streaming_determinism --test geometry_plan
	ESCA_PLAN_CACHE=1 ESCA_GEMM_BACKEND=blocked cargo test -q --locked --offline -p esca-suite --test streaming_determinism --test geometry_plan
	cargo clippy --workspace --all-targets --locked --offline -- -D warnings
	cargo run -q -p esca-analyze --locked --offline -- --fail-stale
	cargo run --release -q -p esca-bench --bin sscn_engine --locked --offline -- --smoke
	cargo run --release -q -p esca-cli --bin esca --locked --offline -- stream --frames 3 --workers 2 --grid 48 --layers 2 --seed 1 --trace-out trace.json --span-trace-out spans.json --metrics-out metrics.json --prom-out metrics.prom --serve 127.0.0.1:0 --serve-scrape
	cargo run --release -q -p esca-bench --bin validate_trace --locked --offline -- trace.json metrics.json
	cargo run --release -q -p esca-bench --bin validate_trace --locked --offline -- spans.json
	cargo run --release -q -p esca-cli --bin esca --locked --offline -- stream --frames 4 --workers 2 --grid 48 --layers 2 --seed 1 --faults --fault-seed 7 --chaos-out chaos.json --serve 127.0.0.1:0 --serve-scrape --flight-out flight.json
	test -s flight.json
	cargo run --release -q -p esca-bench --bin slo_front --locked --offline -- --smoke --out SLO_front.json
	test -s SLO_front.json
	cargo run --release -q -p esca-cli --bin esca --locked --offline -- stream --frames 8 --workers 2 --grid 48 --layers 2 --seed 1 --queue-depth 2 --arrival-period 0 --tenants 35000/2/1,70000/2/0 --slo-front SLO_front.json --serve 127.0.0.1:0 --serve-scrape

# The determinism & invariant gate (see DESIGN.md "Static analysis
# architecture"): ten simulator-specific lints — per-file checks
# (wall-clock in the cycle model, hash-order leaks, panicking idioms,
# ungated trace clones, cycle-domain telemetry, discarded send/join
# results, order-dependent float reductions) plus call-graph passes
# (host->cycle taint, unbounded per-tick growth, lock discipline). New
# findings (not in analyze/allowlist.tsv or analyze/baseline.tsv) fail,
# as do stale suppression entries; reports land in ANALYZE_report.json
# and analyze.sarif (SARIF 2.1.0).
analyze:
	cargo run -q -p esca-analyze --locked --offline -- --fail-stale

bench:
	cargo bench --workspace

# Regenerate every paper table/figure + the beyond-paper experiments.
tables:
	cargo run --release -p esca-bench --bin table1
	cargo run --release -p esca-bench --bin table2
	cargo run --release -p esca-bench --bin table3
	cargo run --release -p esca-bench --bin fig10
	cargo run --release -p esca-bench --bin motivation
	cargo run --release -p esca-bench --bin endtoend
	cargo run --release -p esca-bench --bin streaming
	cargo run --release -p esca-bench --bin sscn_engine

examples:
	cargo run --release --example quickstart
	cargo run --release --example dilation_demo
	cargo run --release --example pipeline_trace
	cargo run --release --example tile_size_sweep
	cargo run --release --example performance_model
	cargo run --release --example classification
	cargo run --release --example design_space
	cargo run --release --example segmentation

doc:
	cargo doc --workspace --no-deps

clippy:
	cargo clippy --workspace --all-targets

fmt:
	cargo fmt --all

clean:
	cargo clean
