//! Umbrella crate for the ESCA-rs workspace: hosts the runnable examples in
//! `examples/` and the cross-crate integration tests in `tests/`.
//!
//! See the individual crates for the actual functionality:
//! [`esca`], [`esca_sscn`], [`esca_tensor`], [`esca_pointcloud`],
//! [`esca_baselines`].
