//! Tile-size design-space exploration: the paper picks 8³ tiles after the
//! Table I analysis; this example shows *why*, connecting occupancy
//! statistics to actual accelerator cycles on the same workload.
//!
//! ```text
//! cargo run --release --example tile_size_sweep
//! ```

use esca::{Esca, EscaConfig};
use esca_pointcloud::{synthetic, voxelize};
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
use esca_sscn::weights::ConvWeights;
use esca_tensor::{Extent3, TileGrid, TileShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cloud = synthetic::shapenet_like(23, &synthetic::ShapeNetConfig::default());
    let input = voxelize::voxelize_occupancy(&cloud, Extent3::cube(192));
    let weights = ConvWeights::seeded(3, 1, 16, 5);
    let qw = QuantizedWeights::auto(&weights, 8, 12)?;
    let qin = quantize_tensor(&input, qw.quant().act);

    println!(
        "{:>6} | {:>12} | {:>14} | {:>12} | {:>10} | {:>9}",
        "tile", "active tiles", "removing ratio", "scan sites", "cycles", "eff GOPS"
    );
    for side in [4u32, 8, 12, 16, 24, 32] {
        let grid = TileGrid::new(input.extent(), TileShape::cube(side));
        let report = grid.classify(&input.occupancy_mask());

        let mut cfg = EscaConfig::default();
        cfg.tile = TileShape::cube(side);
        let run = Esca::new(cfg)?.run_layer(&qin, &qw, true)?;
        println!(
            "{:>5}³ | {:>12} | {:>13.2}% | {:>12} | {:>10} | {:>9.2}",
            side,
            report.active_tiles(),
            report.removing_ratio() * 100.0,
            run.stats.scanned_sites,
            run.stats.total_cycles(),
            run.stats.effective_gops(270.0)
        );
    }
    println!(
        "\nsmaller tiles remove more zeros but fragment the scan; larger tiles\n\
         scan more empty sites per active tile — the paper settles on 8³."
    );
    Ok(())
}
