//! Semantic segmentation end to end: the paper's benchmark scenario.
//!
//! A synthetic indoor scene (NYU-Depth-v2 stand-in) is voxelized to 192³
//! and segmented by the 3-D submanifold sparse U-Net; every Sub-Conv layer
//! is then replayed on the ESCA accelerator model, verifying bit-exactness
//! layer by layer and reporting the aggregate accelerator statistics.
//!
//! ```text
//! cargo run --release --example segmentation
//! ```

use esca::{CycleStats, Esca, EscaConfig};
use esca_pointcloud::labeled::{nyu_like_labeled, segmentation_metrics, voxelize_labels};
use esca_pointcloud::{synthetic, voxelize};
use esca_sscn::quant::{quantize_tensor, submanifold_conv3d_q, QuantizedWeights};
use esca_sscn::unet::{SsUNet, UNetConfig};
use esca_tensor::{Extent3, SparseTensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Labeled scene -> sparse voxel grid + ground-truth labels.
    let labeled = nyu_like_labeled(11, &synthetic::NyuConfig::default());
    let scene = labeled.cloud.clone();
    let grid = Extent3::cube(192);
    let input = voxelize::voxelize_occupancy(&scene, grid);
    let truth = voxelize_labels(&labeled, grid);
    println!(
        "scene: {} points -> {} voxels ({:.4}% sparse)",
        scene.len(),
        input.nnz(),
        input.sparsity() * 100.0
    );

    // 2. SS U-Net forward pass (float reference) with per-layer capture.
    let net = SsUNet::new(UNetConfig::default())?;
    let (logits, traces) = net.forward_trace(&input)?;
    let mut class_histogram = vec![0usize; net.config().classes];
    for (_, f) in logits.iter() {
        let best = f
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("classes > 0");
        class_histogram[best] += 1;
    }
    println!("segmentation produced {} labelled voxels", logits.nnz());
    println!("class histogram: {class_histogram:?}");

    // Quality vs. the generator's ground truth (weights are random — the
    // paper evaluates throughput, not accuracy — so this exercises the
    // metric machinery rather than claiming a trained score).
    let mut predicted = SparseTensor::<f32>::new(grid, 1);
    for (c, f) in logits.iter() {
        let best = f
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| (i % 3) as f32)
            .expect("classes > 0");
        predicted.insert(c, &[best])?;
    }
    let m = segmentation_metrics(&predicted, &truth, 3);
    println!(
        "untrained-weights metrics vs ground truth: accuracy {:.3}, mean IoU {:.3} (chance-level, as expected)",
        m.accuracy, m.mean_iou
    );

    // 3. Replay every Sub-Conv layer on the accelerator.
    let esca = Esca::new(EscaConfig::default())?;
    let mut total = CycleStats::default();
    for t in &traces {
        let (name, w) = &net.subconv_layers()[t.index];
        let qw = QuantizedWeights::auto(w, 8, 12)?;
        let qin = quantize_tensor(&t.input, qw.quant().act);
        let run = esca.run_layer(&qin, &qw, true)?;
        let golden = submanifold_conv3d_q(&qin, &qw, true)?;
        assert!(
            run.output.same_content(&golden),
            "layer {name} diverged from golden"
        );
        println!(
            "  {name:<12} {:>8} cycles  {:>6.2} eff. GOPS  ({} matches)",
            run.stats.total_cycles(),
            run.stats.effective_gops(270.0),
            run.stats.matches
        );
        total += &run.stats;
    }
    println!(
        "whole network on ESCA: {:.3} ms, {:.2} effective GOPS (all layers bit-exact ✓)",
        total.time_s(270.0) * 1e3,
        total.effective_gops(270.0)
    );
    Ok(())
}
