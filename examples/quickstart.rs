//! Quickstart: run one submanifold sparse convolution layer through the
//! ESCA accelerator model and check it against the golden reference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use esca::{Esca, EscaConfig};
use esca_pointcloud::{synthetic, voxelize};
use esca_sscn::quant::{quantize_tensor, submanifold_conv3d_q, QuantizedWeights};
use esca_sscn::weights::ConvWeights;
use esca_tensor::Extent3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A point cloud: a synthetic CAD-like object (stand-in for a
    //    ShapeNet sample), voxelized onto the paper's 192³ grid.
    let cloud = synthetic::shapenet_like(42, &synthetic::ShapeNetConfig::default());
    let grid = Extent3::cube(192);
    let input = voxelize::voxelize_occupancy(&cloud, grid);
    println!(
        "input: {} points -> {} active voxels ({:.4}% sparsity)",
        cloud.len(),
        input.nnz(),
        input.sparsity() * 100.0
    );

    // 2. A 3x3x3 Sub-Conv layer (1 -> 16 channels), INT8/INT16 quantized
    //    exactly as the paper deploys it.
    let weights = ConvWeights::seeded(3, 1, 16, 7);
    let qw = QuantizedWeights::auto(&weights, 8, 12)?;
    let qin = quantize_tensor(&input, qw.quant().act);

    // 3. Run it on the accelerator model (270 MHz ZCU102 design point).
    let esca = Esca::new(EscaConfig::default())?;
    let run = esca.run_layer(&qin, &qw, true)?;
    let s = &run.stats;
    println!(
        "accelerator: {} active tiles of {} ({}x zero-removing reduction)",
        s.active_tiles,
        s.total_tiles,
        s.total_tiles / s.active_tiles.max(1)
    );
    println!(
        "  {} match groups, {} matches ({:.2} per group)",
        s.match_groups,
        s.matches,
        s.mean_match_group()
    );
    println!(
        "  {} cycles -> {:.3} ms @ 270 MHz, {:.2} effective GOPS",
        s.total_cycles(),
        s.time_s(270.0) * 1e3,
        s.effective_gops(270.0)
    );

    // 4. Bit-exact against the golden quantized reference.
    let golden = submanifold_conv3d_q(&qin, &qw, true)?;
    assert!(run.output.same_content(&golden));
    println!("output verified bit-exact against the golden SSCN reference ✓");
    Ok(())
}
