//! Object classification with an SSCN classifier: the other application
//! family the paper's introduction motivates (recognition on ShapeNet-like
//! objects). Sub-Conv stages are replayed on the ESCA accelerator model,
//! verified bit-exact, and per-class throughput is reported.
//!
//! ```text
//! cargo run --release --example classification
//! ```

use esca::{CycleStats, Esca, EscaConfig};
use esca_pointcloud::{synthetic, voxelize};
use esca_sscn::classifier::{ClassifierConfig, SscnClassifier};
use esca_sscn::quant::{quantize_tensor, submanifold_conv3d_q, QuantizedWeights};
use esca_tensor::Extent3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = SscnClassifier::new(ClassifierConfig {
        classes: synthetic::ObjectClass::ALL.len(),
        ..Default::default()
    })?;
    let esca = Esca::new(EscaConfig::default())?;

    println!("classifying one object of each synthetic class:\n");
    let mut grand_total = CycleStats::default();
    for (i, class) in synthetic::ObjectClass::ALL.into_iter().enumerate() {
        let cfg = synthetic::ShapeNetConfig {
            class: Some(class),
            ..Default::default()
        };
        let cloud = synthetic::shapenet_like(100 + i as u64, &cfg);
        let input = voxelize::voxelize_occupancy(&cloud, Extent3::cube(96));

        // Float forward for the prediction, traced for accelerator replay.
        let (logits, traces) = net.forward_trace(&input)?;
        let pred = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(k, _)| k)
            .expect("classes > 0");

        // Replay every Sub-Conv stage on ESCA, verifying bit-exactness.
        let mut total = CycleStats::default();
        for t in &traces {
            let (name, w) = &net.subconv_layers()[t.index];
            let qw = QuantizedWeights::auto(w, 8, 12)?;
            let qin = quantize_tensor(&t.input, qw.quant().act);
            let run = esca.run_layer(&qin, &qw, true)?;
            let golden = submanifold_conv3d_q(&qin, &qw, true)?;
            assert!(run.output.same_content(&golden), "{name} diverged");
            total += &run.stats;
        }
        grand_total += &total;
        println!(
            "  {class:?}: {} voxels, predicted logit argmax = {pred}, \
             {:.3} ms on ESCA ({} Sub-Conv layers, bit-exact ✓)",
            input.nnz(),
            total.time_s(270.0) * 1e3,
            traces.len()
        );
    }
    println!(
        "\naggregate: {:.2} effective GOPS over {} matches",
        grand_total.effective_gops(270.0),
        grand_total.matches
    );
    Ok(())
}
