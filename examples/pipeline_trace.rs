//! Pipeline trace: reproduce the paper's Fig. 7(b) — the matching steps
//! (read masks / judge / state index / fetch) overlapping with compute in
//! a pipelined fashion — on a small worked example.
//!
//! ```text
//! cargo run --release --example pipeline_trace
//! ```

use esca::{Esca, EscaConfig};
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
use esca_sscn::weights::ConvWeights;
use esca_tensor::{Coord3, Extent3, SparseTensor, TileShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small 4³ tile with a handful of active sites, like the paper's
    // worked example (extended to 3-D).
    let mut input = SparseTensor::<f32>::new(Extent3::cube(4), 1);
    for (i, c) in [
        Coord3::new(1, 1, 0),
        Coord3::new(1, 1, 1),
        Coord3::new(1, 2, 1),
        Coord3::new(2, 1, 2),
        Coord3::new(2, 2, 3),
    ]
    .into_iter()
    .enumerate()
    {
        input.insert(c, &[0.25 * (i as f32 + 1.0)])?;
    }

    let weights = ConvWeights::seeded(3, 1, 16, 3);
    let qw = QuantizedWeights::auto(&weights, 8, 12)?;
    let qin = quantize_tensor(&input, qw.quant().act);

    let mut cfg = EscaConfig::default();
    cfg.tile = TileShape::cube(4);
    cfg.record_trace = true;
    let esca = Esca::new(cfg)?;
    let run = esca.run_layer(&qin, &qw, false)?;

    println!("pipeline activity, first 100 cycles (# = stage busy):\n");
    print!("{}", run.trace.render(100));
    println!(
        "\n{} match groups, {} matches, {} pipeline cycles",
        run.stats.match_groups, run.stats.matches, run.stats.pipeline_cycles
    );
    println!("the matching steps and the computing core overlap — the paper's Fig. 7(b) in action");
    Ok(())
}
