//! Fig. 2 demo: traditional convolution *dilates* sparsity while
//! submanifold sparse convolution preserves it exactly.
//!
//! Prints an ASCII slice of the active pattern before/after each kind of
//! convolution.
//!
//! ```text
//! cargo run --release --example dilation_demo
//! ```

use esca_sscn::conv::{dense_conv3d, submanifold_conv3d};
use esca_sscn::weights::ConvWeights;
use esca_tensor::{Coord3, Extent3, SparseTensor};

fn render_slice(label: &str, active: impl Fn(i32, i32) -> bool, side: i32) {
    println!("{label}:");
    for y in 0..side {
        let row: String = (0..side)
            .map(|x| if active(x, y) { '#' } else { '.' })
            .collect();
        println!("  {row}");
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 12;
    let extent = Extent3::cube(side as u32);
    // An L-shaped stroke on the z = 5 plane, like the paper's 2-D sketch.
    let mut input = SparseTensor::<f32>::new(extent, 1);
    for i in 0..5 {
        input.insert(Coord3::new(3 + i, 4, 5), &[1.0])?;
    }
    for j in 1..4 {
        input.insert(Coord3::new(3, 4 + j, 5), &[1.0])?;
    }
    println!(
        "input: {} active sites of {} ({:.1}% sparse)\n",
        input.nnz(),
        extent.volume(),
        input.sparsity() * 100.0
    );
    render_slice(
        "input pattern (z = 5 slice)",
        |x, y| input.contains(Coord3::new(x, y, 5)),
        side,
    );

    // An all-ones kernel makes the dilation obvious.
    let mut w = ConvWeights::zeros(3, 1, 1);
    for tap in 0..27 {
        w.set_w(tap, 0, 0, 1.0);
    }

    let dense_out = dense_conv3d(&input.to_dense(), &w)?;
    render_slice(
        "traditional convolution (Fig. 2a) — dilated",
        |x, y| {
            dense_out
                .get_opt(Coord3::new(x, y, 5))
                .map(|f| f[0] != 0.0)
                .unwrap_or(false)
        },
        side,
    );

    let sub_out = submanifold_conv3d(&input, &w)?;
    render_slice(
        "submanifold sparse convolution (Fig. 2b) — preserved",
        |x, y| sub_out.contains(Coord3::new(x, y, 5)),
        side,
    );

    println!(
        "traditional conv active sites: {} (grew from {})",
        dense_out.nonzero_sites(),
        input.nnz()
    );
    println!(
        "submanifold conv active sites: {} (identical pattern: {})",
        sub_out.nnz(),
        sub_out.same_active_set(&input)
    );
    Ok(())
}
