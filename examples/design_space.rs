//! Design-space exploration: sweep tile size and computing-array
//! parallelism over a real Sub-Conv workload and print the Pareto front
//! under (GOPS ↑, DSP ↓, power ↓) — how one would re-derive the paper's
//! 8³ / 16×16 design point.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use esca::dse::{pareto_front, sweep, DseWorkload, SweepAxes};
use esca::EscaConfig;
use esca_pointcloud::{synthetic, voxelize};
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
use esca_sscn::weights::ConvWeights;
use esca_tensor::Extent3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Workload: two representative Sub-Conv layers (16->16 and 32->32)
    // on a voxelized synthetic object.
    let cloud = synthetic::shapenet_like(13, &synthetic::ShapeNetConfig::default());
    let occ = voxelize::voxelize_occupancy(&cloud, Extent3::cube(192));
    let mut workload: DseWorkload = Vec::new();
    for (in_ch, out_ch, seed) in [(16usize, 16usize, 1u64), (32, 32, 2)] {
        let mut lifted = esca_tensor::SparseTensor::<f32>::new(occ.extent(), in_ch);
        for (c, f) in occ.iter() {
            let feats: Vec<f32> = (0..in_ch).map(|i| f[0] * 0.05 * (i as f32 + 1.0)).collect();
            lifted.insert(c, &feats)?;
        }
        let qw = QuantizedWeights::auto(&ConvWeights::seeded(3, in_ch, out_ch, seed), 8, 12)?;
        let qin = quantize_tensor(&lifted, qw.quant().act);
        workload.push((qin, qw, true));
    }

    let axes = SweepAxes {
        tile_sides: vec![4, 8, 16],
        parallelism: vec![(8, 8), (16, 16), (32, 32)],
        fifo_depths: vec![16],
    };
    let points = sweep(&EscaConfig::default(), &axes, &workload)?;

    println!(
        "{:<26} {:>8} {:>8} {:>9} {:>6} {:>8} {:>7}",
        "design point", "GOPS", "power W", "GOPS/W", "DSP", "LUT", "BRAM"
    );
    for p in &points {
        println!(
            "{:<26} {:>8.2} {:>8.2} {:>9.2} {:>6} {:>8} {:>7.1}",
            p.label, p.gops, p.power_w, p.gops_per_w, p.dsp, p.lut, p.bram36
        );
    }

    println!("\nPareto front (GOPS up, DSP down, power down):");
    for p in pareto_front(&points) {
        println!("  {}", p.label);
    }
    println!("\nthe paper's point (tile 8³, 16×16) sits on the knee of the front");
    Ok(())
}
