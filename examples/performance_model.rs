//! Performance-model comparison: the closed-form analytical model vs. the
//! cycle simulator, per SS U-Net layer. Two independent derivations of
//! the same microarchitecture — where they agree, the accounting is
//! trustworthy; where they drift, the breakdown shows why.
//!
//! ```text
//! cargo run --release --example performance_model
//! ```

use esca::analytic::{estimate_layer, LayerShape};
use esca::{Esca, EscaConfig};
use esca_pointcloud::{synthetic, voxelize};
use esca_sscn::quant::{quantize_tensor, QuantizedWeights};
use esca_sscn::unet::{SsUNet, UNetConfig};
use esca_tensor::Extent3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = EscaConfig::default();
    let esca = Esca::new(cfg)?;
    let net = SsUNet::new(UNetConfig::default())?;
    let cloud = synthetic::shapenet_like(11, &synthetic::ShapeNetConfig::default());
    let input = voxelize::voxelize_occupancy(&cloud, Extent3::cube(192));
    let (_, traces) = net.forward_trace(&input)?;

    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "layer", "simulated", "analytic", "error"
    );
    let mut worst: f64 = 0.0;
    for t in &traces {
        let (name, w) = &net.subconv_layers()[t.index];
        let qw = QuantizedWeights::auto(w, 8, 12)?;
        let qin = quantize_tensor(&t.input, qw.quant().act);
        let run = esca.run_layer(&qin, &qw, true)?;
        let shape = LayerShape::measure(&qin, &cfg, w.out_ch());
        let est = estimate_layer(&shape, &cfg);
        let sim = run.stats.total_cycles() as f64;
        let ana = est.total_cycles() as f64;
        let err = (ana - sim) / sim;
        worst = worst.max(err.abs());
        println!(
            "{:<12} {:>12} {:>12} {:>7.1}%",
            name,
            run.stats.total_cycles(),
            est.total_cycles(),
            err * 100.0
        );
    }
    println!(
        "\nworst-case deviation {:.1}% — the closed form evaluates in microseconds,\n\
         the simulator in milliseconds; use the former for design sweeps, the\n\
         latter for ground truth",
        worst * 100.0
    );
    Ok(())
}
